(* Run-comparison regression diffing: given two manifests (baseline A,
   candidate B), pair up every counter, derived metric, and histogram
   quantile, compute relative deltas, classify each as regression /
   improvement / unchanged by the metric's polarity, and rank the
   result. Regressions past the threshold make `sassi_run compare`
   exit non-zero, which is what lets CI enforce "no perf regressions"
   on the simulator. *)

type direction =
  | Higher_better
  | Lower_better
  | Neutral

type cls =
  | Regression
  | Improvement
  | Unchanged
  | Info

type row = {
  c_name : string;
  c_a : float;
  c_b : float;
  c_delta_pct : float;  (** (b - a) / a * 100; infinite when a = 0 <> b *)
  c_direction : direction;
  c_class : cls;
}

type result = {
  cr_threshold : float;
  cr_a : Manifest.t;
  cr_b : Manifest.t;
  cr_rows : row list;  (** regressions first, ranked by |delta| *)
}

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.sub s (n - m) m = suf

(* Polarity by name. Wall-clock time is deliberately Neutral: it is
   host-noise, not simulated performance, so it never gates CI; the
   cycle count is the latency gate. *)
let direction name =
  let lower =
    [ "cycles"; "latency"; "wait"; "misses"; "conflicts"; "stall";
      "transactions_per_access"; "overhead"; "dropped" ]
  in
  let higher =
    [ "ipc"; "efficiency"; "hit_rate"; "occupancy"; "throughput" ]
  in
  if name = "wall_time_s" || has_suffix name "/count" || name = "launches"
  then Neutral
  else if List.exists (contains_sub name) lower then Lower_better
  else if List.exists (contains_sub name) higher then Higher_better
  else Neutral

let delta_pct a b =
  if a = 0. then begin
    if b = 0. then 0.
    else if b > 0. then Float.infinity
    else Float.neg_infinity
  end
  else (b -. a) /. Float.abs a *. 100.

let classify ~threshold dir delta =
  if Float.is_nan delta then Info
  else
    match dir with
    | Neutral -> Info
    | Higher_better ->
      if delta < -.threshold then Regression
      else if delta > threshold then Improvement
      else Unchanged
    | Lower_better ->
      if delta > threshold then Regression
      else if delta < -.threshold then Improvement
      else Unchanged

(* All comparable (name, value) pairs of one manifest: counters,
   derived metrics, and the tail behaviour of each histogram. *)
let numeric_series (m : Manifest.t) =
  List.map (fun (k, v) -> (k, float_of_int v)) m.Manifest.m_counters
  @ m.Manifest.m_metrics
  @ List.concat_map
      (fun (k, s) ->
         [ (k ^ "/p50", s.Hist.s_p50);
           (k ^ "/p99", s.Hist.s_p99);
           (k ^ "/max", float_of_int s.Hist.s_max);
           (k ^ "/count", float_of_int s.Hist.s_count) ])
      m.Manifest.m_histograms
  @ [ ("wall_time_s", m.Manifest.m_wall_time_s) ]

let rank_key r =
  (* Regressions first, then improvements, then the rest; each group
     ranked by |delta|, infinite deltas first. *)
  let group =
    match r.c_class with
    | Regression -> 0
    | Improvement -> 1
    | Unchanged -> 2
    | Info -> 3
  in
  let mag =
    if Float.is_nan r.c_delta_pct then 0. else Float.abs r.c_delta_pct
  in
  (group, -.mag)

let diff ?(threshold = 2.0) (a : Manifest.t) (b : Manifest.t) =
  let sb = numeric_series b in
  let rows =
    List.filter_map
      (fun (name, va) ->
         match List.assoc_opt name sb with
         | None -> None
         | Some vb ->
           let d = delta_pct va vb in
           let dir = direction name in
           Some
             { c_name = name;
               c_a = va;
               c_b = vb;
               c_delta_pct = d;
               c_direction = dir;
               c_class = classify ~threshold dir d })
      (numeric_series a)
  in
  let rows =
    List.stable_sort (fun x y -> compare (rank_key x) (rank_key y)) rows
  in
  { cr_threshold = threshold; cr_a = a; cr_b = b; cr_rows = rows }

let regressions t =
  List.filter (fun r -> r.c_class = Regression) t.cr_rows

let improvements t =
  List.filter (fun r -> r.c_class = Improvement) t.cr_rows

let cls_to_string = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Unchanged -> "unchanged"
  | Info -> "info"

let direction_to_string = function
  | Higher_better -> "higher=better"
  | Lower_better -> "lower=better"
  | Neutral -> "neutral"

let fmt_value v =
  if Float.is_nan v then "n/a"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let fmt_delta d =
  if Float.is_nan d then "   n/a"
  else if d = Float.infinity then "  +inf"
  else if d = Float.neg_infinity then "  -inf"
  else Printf.sprintf "%+.2f%%" d

(* Ranked human-readable table. [all] includes unchanged/info rows;
   the default shows only rows that moved. *)
let render ?(all = false) t =
  let b = Buffer.create 2048 in
  let hdr (m : Manifest.t) tag =
    Buffer.add_string b
      (Printf.sprintf "%s: %s/%s (%s, seed %d)  wall %.2fs  [%s]\n" tag
         m.Manifest.m_workload m.Manifest.m_variant m.Manifest.m_instrument
         m.Manifest.m_seed m.Manifest.m_wall_time_s
         (Format.asprintf "%a" Build_info.pp m.Manifest.m_build))
  in
  hdr t.cr_a "A";
  hdr t.cr_b "B";
  if
    t.cr_a.Manifest.m_workload <> t.cr_b.Manifest.m_workload
    || t.cr_a.Manifest.m_variant <> t.cr_b.Manifest.m_variant
  then
    Buffer.add_string b
      "warning: manifests come from different workloads; the diff below \
       compares apples to oranges\n";
  Buffer.add_string b
    (Printf.sprintf "threshold: %.2f%%\n\n" t.cr_threshold);
  Buffer.add_string b
    (Printf.sprintf "%-36s %14s %14s %9s  %-14s %s\n" "metric" "A" "B"
       "delta" "polarity" "class");
  let shown =
    List.filter
      (fun r ->
         all
         || (match r.c_class with
             | Regression | Improvement -> true
             | Unchanged | Info -> false))
      t.cr_rows
  in
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%-36s %14s %14s %9s  %-14s %s\n" r.c_name
            (fmt_value r.c_a) (fmt_value r.c_b)
            (fmt_delta r.c_delta_pct)
            (direction_to_string r.c_direction)
            (cls_to_string r.c_class)))
    shown;
  if shown = [] then
    Buffer.add_string b "  (no metric moved past the threshold)\n";
  let nr = List.length (regressions t) in
  let ni = List.length (improvements t) in
  Buffer.add_string b
    (Printf.sprintf
       "\n%d regression%s, %d improvement%s past %.2f%% over %d compared \
        metrics\n"
       nr
       (if nr = 1 then "" else "s")
       ni
       (if ni = 1 then "" else "s")
       t.cr_threshold (List.length t.cr_rows));
  Buffer.contents b

let to_json t =
  Trace.Json.Obj
    [ ("threshold_pct", Trace.Json.Float t.cr_threshold);
      ("a", Manifest.to_json t.cr_a);
      ("b", Manifest.to_json t.cr_b);
      ( "rows",
        Trace.Json.List
          (List.map
             (fun r ->
                Trace.Json.Obj
                  [ ("name", Trace.Json.Str r.c_name);
                    ("a", Trace.Json.Float r.c_a);
                    ("b", Trace.Json.Float r.c_b);
                    ("delta_pct", Trace.Json.Float r.c_delta_pct);
                    ( "polarity",
                      Trace.Json.Str (direction_to_string r.c_direction) );
                    ("class", Trace.Json.Str (cls_to_string r.c_class)) ])
             t.cr_rows) ) ]
