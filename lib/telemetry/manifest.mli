(** Run manifests: one JSON document per run with identity, config,
    seed, command line, wall time, build provenance, counters, derived
    metrics, and histogram summaries. The input to {!Compare}. *)

val schema : string

type t = {
  m_workload : string;
  m_variant : string;
  m_instrument : string;
  m_seed : int;
  m_argv : string list;
  m_wall_time_s : float;
  m_build : Build_info.t;
  m_config : (string * int) list;
  m_counters : (string * int) list;
  m_metrics : (string * float) list;
  m_histograms : (string * Hist.summary) list;
}

val to_json : t -> Trace.Json.t

val write : string -> t -> unit
(** @raise Sys_error on unwritable paths. *)

val of_json : Trace.Json.t -> (t, string) result

val of_string : string -> (t, string) result

val read : string -> (t, string) result
(** Parse a manifest file; errors are prefixed with the path.
    @raise Sys_error on unreadable paths. *)
