(* Log2-bucketed histogram of non-negative integer observations.
   Bucket 0 counts the value 0; bucket k >= 1 counts values in
   [2^(k-1), 2^k - 1]. Observation is O(1) with no allocation, which
   is what lets the GPU model observe every memory request and branch
   without measurable slowdown; quantiles are reconstructed from the
   buckets with linear interpolation, so they are estimates with at
   most a 2x bucket-width error (exact min and max are tracked on the
   side and used to clamp). *)

let num_buckets = 64

type t = {
  mutable count : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
  buckets : int array;
}

type summary = {
  s_count : int;
  s_sum : int;
  s_min : int;
  s_max : int;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

let create () =
  { count = 0; sum = 0; vmin = max_int; vmax = 0;
    buckets = Array.make num_buckets 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let v = ref v in
    let i = ref 0 in
    while !v > 0 do
      v := !v lsr 1;
      incr i
    done;
    !i
  end

(* Inclusive value range covered by bucket [k]. *)
let bucket_bounds k = if k = 0 then (0, 0) else (1 lsl (k - 1), (1 lsl k) - 1)

let observe t v =
  let v = if v < 0 then 0 else v in
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  let b = bucket_of v in
  t.buckets.(b) <- t.buckets.(b) + 1

let count t = t.count

let sum t = t.sum

let min_value t = if t.count = 0 then 0 else t.vmin

let max_value t = t.vmax

let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let buckets t = Array.copy t.buckets

(* Field-by-field capture; under a concurrent writer each field is
   read once, so the copy is a point-in-time snapshot whose internal
   invariants (count = sum of buckets as of the capture) hold for
   every reader of the copy. *)
let copy t =
  { count = t.count;
    sum = t.sum;
    vmin = t.vmin;
    vmax = t.vmax;
    buckets = Array.copy t.buckets }

let clear t =
  t.count <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0;
  Array.fill t.buckets 0 num_buckets 0

let merge ~into t =
  into.count <- into.count + t.count;
  into.sum <- into.sum + t.sum;
  if t.count > 0 then begin
    if t.vmin < into.vmin then into.vmin <- t.vmin;
    if t.vmax > into.vmax then into.vmax <- t.vmax
  end;
  Array.iteri (fun i c -> into.buckets.(i) <- into.buckets.(i) + c) t.buckets

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = q *. float_of_int t.count in
    let rec walk k cum =
      if k >= num_buckets then float_of_int t.vmax
      else begin
        let c = t.buckets.(k) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          (* Interpolate within the bucket's value range. *)
          let lo, hi = bucket_bounds k in
          let lo = max lo (min_value t) in
          let hi = min hi t.vmax in
          let inside = (target -. float_of_int cum) /. float_of_int c in
          let inside = if inside < 0. then 0. else inside in
          float_of_int lo +. (float_of_int (hi - lo) *. inside)
        end
        else walk (k + 1) cum'
      end
    in
    walk 0 0
  end

let summarize t =
  { s_count = t.count;
    s_sum = t.sum;
    s_min = min_value t;
    s_max = t.vmax;
    s_mean = mean t;
    s_p50 = quantile t 0.5;
    s_p90 = quantile t 0.9;
    s_p99 = quantile t 0.99 }

let pp ppf t =
  let s = summarize t in
  Format.fprintf ppf
    "n=%d sum=%d min=%d p50=%.1f p90=%.1f p99=%.1f max=%d mean=%.2f"
    s.s_count s.s_sum s.s_min s.s_p50 s.s_p90 s.s_p99 s.s_max s.s_mean

(* ASCII rendering of the non-empty bucket range, for CLI summaries. *)
let render t =
  let b = Buffer.create 256 in
  if t.count = 0 then Buffer.add_string b "  (empty)\n"
  else begin
    let peak = Array.fold_left max 1 t.buckets in
    Array.iteri
      (fun k c ->
         if c > 0 then begin
           let lo, hi = bucket_bounds k in
           let bar = String.make (max 1 (c * 40 / peak)) '#' in
           Buffer.add_string b
             (Printf.sprintf "  %10d..%-10d %9d %s\n" lo hi c bar)
         end)
      t.buckets
  end;
  Buffer.contents b
