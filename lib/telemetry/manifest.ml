(* The run manifest: a single JSON document capturing everything
   needed to reproduce and compare a run — workload identity, machine
   config, seed, command line, wall time, build provenance, the full
   counter dump, derived metrics, and histogram summaries. `sassi_run
   compare` consumes two of these. *)

let schema = "sassi-manifest/1"

type t = {
  m_workload : string;
  m_variant : string;
  m_instrument : string;
  m_seed : int;
  m_argv : string list;
  m_wall_time_s : float;
  m_build : Build_info.t;
  m_config : (string * int) list;
  m_counters : (string * int) list;
  m_metrics : (string * float) list;
  m_histograms : (string * Hist.summary) list;
}

let to_json t =
  Trace.Json.Obj
    [ ("schema", Trace.Json.Str schema);
      ("workload", Trace.Json.Str t.m_workload);
      ("variant", Trace.Json.Str t.m_variant);
      ("instrument", Trace.Json.Str t.m_instrument);
      ("seed", Trace.Json.Int t.m_seed);
      ( "argv",
        Trace.Json.List (List.map (fun a -> Trace.Json.Str a) t.m_argv) );
      ("wall_time_s", Trace.Json.Float t.m_wall_time_s);
      ("build", Build_info.to_json t.m_build);
      ( "config",
        Trace.Json.Obj
          (List.map (fun (k, v) -> (k, Trace.Json.Int v)) t.m_config) );
      ( "counters",
        Trace.Json.Obj
          (List.map (fun (k, v) -> (k, Trace.Json.Int v)) t.m_counters) );
      ( "metrics",
        Trace.Json.Obj
          (List.map (fun (k, v) -> (k, Trace.Json.Float v)) t.m_metrics) );
      ( "histograms",
        Trace.Json.Obj
          (List.map
             (fun (k, s) -> (k, Export.summary_to_json s))
             t.m_histograms) ) ]

let write path t = Trace.Json.write_file path (to_json t)

(* ---------- reading ---------- *)

let str j key ~default =
  match Trace.Json.member key j with
  | Some (Trace.Json.Str s) -> s
  | _ -> default

let num = function
  | Trace.Json.Int i -> Some (float_of_int i)
  | Trace.Json.Float f -> Some f
  | Trace.Json.Null -> Some Float.nan (* NaN round-trips as null *)
  | _ -> None

let int_pairs j key =
  match Trace.Json.member key j with
  | Some (Trace.Json.Obj kvs) ->
    List.filter_map
      (fun (k, v) ->
         match v with
         | Trace.Json.Int i -> Some (k, i)
         | _ -> None)
      kvs
  | _ -> []

let float_pairs j key =
  match Trace.Json.member key j with
  | Some (Trace.Json.Obj kvs) ->
    List.filter_map (fun (k, v) -> Option.map (fun f -> (k, f)) (num v)) kvs
  | _ -> []

let summary_of_json j =
  let i key =
    match Trace.Json.member key j with
    | Some (Trace.Json.Int n) -> n
    | _ -> 0
  in
  let f key =
    match Option.bind (Trace.Json.member key j) num with
    | Some v -> v
    | None -> 0.
  in
  { Hist.s_count = i "count";
    Hist.s_sum = i "sum";
    Hist.s_min = i "min";
    Hist.s_max = i "max";
    Hist.s_mean = f "mean";
    Hist.s_p50 = f "p50";
    Hist.s_p90 = f "p90";
    Hist.s_p99 = f "p99" }

let of_json j =
  match Trace.Json.member "schema" j with
  | Some (Trace.Json.Str s) when s = schema ->
    Ok
      { m_workload = str j "workload" ~default:"unknown";
        m_variant = str j "variant" ~default:"unknown";
        m_instrument = str j "instrument" ~default:"none";
        m_seed =
          (match Trace.Json.member "seed" j with
           | Some (Trace.Json.Int n) -> n
           | _ -> 0);
        m_argv =
          (match Trace.Json.member "argv" j with
           | Some (Trace.Json.List vs) ->
             List.filter_map
               (function Trace.Json.Str s -> Some s | _ -> None)
               vs
           | _ -> []);
        m_wall_time_s =
          (match Option.bind (Trace.Json.member "wall_time_s" j) num with
           | Some v -> v
           | None -> 0.);
        m_build =
          (match Trace.Json.member "build" j with
           | Some b -> Build_info.of_json b
           | None -> Build_info.of_json (Trace.Json.Obj []));
        m_config = int_pairs j "config";
        m_counters = int_pairs j "counters";
        m_metrics = float_pairs j "metrics";
        m_histograms =
          (match Trace.Json.member "histograms" j with
           | Some (Trace.Json.Obj kvs) ->
             List.map (fun (k, v) -> (k, summary_of_json v)) kvs
           | _ -> []) }
  | Some (Trace.Json.Str other) ->
    Error (Printf.sprintf "unsupported manifest schema %S (want %S)" other schema)
  | _ -> Error (Printf.sprintf "not a run manifest (missing %S field)" "schema")

let of_string s =
  match Trace.Json.of_string s with
  | Error e -> Error e
  | Ok j -> of_json j

let read path =
  match Trace.Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j ->
    (match of_json j with
     | Error e -> Error (Printf.sprintf "%s: %s" path e)
     | Ok m -> Ok m)
