(* A labeled instrument registry: the exporters' single entry point.
   Instruments are registered once (at enable time, not on the hot
   path) and read lazily at export time, so a registered gauge costs
   nothing until someone scrapes it. *)

type instrument =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Hist.t

type spec = {
  sp_name : string;
  sp_help : string;
  sp_labels : (string * string) list;
  sp_instrument : instrument;
}

type t = { mutable specs : spec list (* reverse registration order *) }

let create () = { specs = [] }

let mem t name labels =
  List.exists
    (fun s -> s.sp_name = name && s.sp_labels = labels)
    t.specs

let register t ?(labels = []) ~help name instrument =
  if mem t name labels then
    invalid_arg
      (Printf.sprintf "Telemetry.Registry: duplicate instrument %s" name);
  t.specs <-
    { sp_name = name; sp_help = help; sp_labels = labels;
      sp_instrument = instrument }
    :: t.specs

let counter t ?labels ~help name =
  let r = ref 0 in
  register t ?labels ~help name (Counter (fun () -> !r));
  r

let gauge t ?labels ~help name f = register t ?labels ~help name (Gauge f)

let histogram t ?labels ~help name =
  let h = Hist.create () in
  register t ?labels ~help name (Histogram h);
  h

let specs t = List.rev t.specs

(* Freeze every instrument by reading it exactly once. Exporters walk
   a snapshot instead of the live registry, so one exposition never
   mixes values read at different times — the scrape-consistency
   contract of `GET /metrics` under concurrent observers. *)
let snapshot t =
  { specs =
      List.map
        (fun s ->
           let frozen =
             match s.sp_instrument with
             | Counter read ->
               let v = read () in
               Counter (fun () -> v)
             | Gauge read ->
               let v = read () in
               Gauge (fun () -> v)
             | Histogram h -> Histogram (Hist.copy h)
           in
           { s with sp_instrument = frozen })
        t.specs }
