(** Bounded time series of gauge snapshots, sampled every [interval]
    cycles. Rows past the capacity drop oldest-first and are counted,
    so truncation is visible to consumers. *)

type row = {
  r_cycle : int;
  r_sm : int;
  r_values : float array;
}

type t

val create : ?capacity:int -> interval:int -> string array -> t
(** [create ~interval columns]; capacity defaults to 65536 rows.
    @raise Invalid_argument on non-positive interval or capacity. *)

val columns : t -> string array

val interval : t -> int

val sample : t -> cycle:int -> sm:int -> float array -> unit
(** @raise Invalid_argument when the value count does not match the
    column count. *)

val capacity : t -> int

val absorb : into:t -> t -> unit
(** Replay every row of the second series into [into] (oldest first,
    through {!sample} so capacity/dropped accounting stays exact) and
    add its dropped count. Used by the device sharder to merge per-SM
    series back into the shared one in [sm_id] order.
    @raise Invalid_argument when columns or interval differ. *)

val length : t -> int

val dropped : t -> int

val rows : t -> row list
(** Oldest first. *)

val to_json : t -> Trace.Json.t
