(** Registry exporters: Prometheus text exposition format and JSON.
    Histograms export their native power-of-two buckets cumulatively
    ([le] upper bounds), plus [_sum] and [_count]. *)

val sanitize_name : string -> string
(** Map to the Prometheus metric-name alphabet ([A-Za-z0-9_:]). *)

val prometheus : Registry.t -> string
(** Renders a {!Registry.snapshot} of the argument, so one exposition
    is internally consistent (each instrument read exactly once) even
    while other domains keep observing. [to_json] and [write_file]
    share the same route. *)

val summary_to_json : Hist.summary -> Trace.Json.t

val to_json : Registry.t -> Trace.Json.t

val write_file : string -> Registry.t -> unit
(** JSON when the path ends in [.json], Prometheus text otherwise.
    @raise Sys_error on unwritable paths. *)
