(** Labeled registry of counters, gauges, and histograms. Registration
    happens once at enable time; instruments are only read when an
    exporter walks the registry. *)

type instrument =
  | Counter of (unit -> int)
  | Gauge of (unit -> float)
  | Histogram of Hist.t

type spec = {
  sp_name : string;
  sp_help : string;
  sp_labels : (string * string) list;
  sp_instrument : instrument;
}

type t

val create : unit -> t

val register :
  t -> ?labels:(string * string) list -> help:string -> string -> instrument
  -> unit
(** @raise Invalid_argument on a duplicate (name, labels) pair. *)

val counter :
  t -> ?labels:(string * string) list -> help:string -> string -> int ref
(** Register a counter and return the cell to increment. *)

val gauge :
  t -> ?labels:(string * string) list -> help:string -> string
  -> (unit -> float) -> unit

val histogram :
  t -> ?labels:(string * string) list -> help:string -> string -> Hist.t
(** Register a fresh histogram and return it. *)

val specs : t -> spec list
(** In registration order. *)

val snapshot : t -> t
(** Point-in-time capture: every counter and gauge is read exactly
    once, every histogram is copied ({!Hist.copy}), and the result is
    a registry of constants. Exporters rendering a snapshot can read
    each instrument as often as they like without racing writers that
    keep observing the live registry — {!Export} routes every
    exposition through this. *)
