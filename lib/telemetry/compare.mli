(** Run-comparison regression diffing over two manifests (baseline A
    vs. candidate B): relative deltas per counter / metric / histogram
    quantile, classified by polarity and ranked regressions-first. *)

type direction =
  | Higher_better
  | Lower_better
  | Neutral

type cls =
  | Regression
  | Improvement
  | Unchanged
  | Info

type row = {
  c_name : string;
  c_a : float;
  c_b : float;
  c_delta_pct : float;  (** (b - a) / a * 100; infinite when a = 0 <> b *)
  c_direction : direction;
  c_class : cls;
}

type result = {
  cr_threshold : float;
  cr_a : Manifest.t;
  cr_b : Manifest.t;
  cr_rows : row list;  (** regressions first, ranked by |delta| *)
}

val direction : string -> direction
(** Polarity inferred from the metric name; [wall_time_s] is Neutral
    by design (host noise must not gate CI). *)

val diff : ?threshold:float -> Manifest.t -> Manifest.t -> result
(** [threshold] is a percentage (default 2.0): moves within it are
    Unchanged. Only names present in both manifests are compared. *)

val regressions : result -> row list

val improvements : result -> row list

val render : ?all:bool -> result -> string
(** Ranked table with provenance header; [all] includes rows that did
    not move past the threshold. *)

val to_json : result -> Trace.Json.t

val cls_to_string : cls -> string

val direction_to_string : direction -> string
