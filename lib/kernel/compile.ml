exception Compile_error of string

type options = {
  max_regs : int;
  opt_level : int;
}

let default_options = { max_regs = 63; opt_level = 1 }

let verify = Analysis.Verifier.gate

let compile_vir ?(options = default_options) k =
  (match Typecheck.check k with
   | Ok () -> ()
   | Error e -> raise (Compile_error (Typecheck.error_to_string e)));
  let lowered =
    try Lower.lower k with
    | Lower.Lower_error m ->
      raise (Compile_error (Printf.sprintf "%s: %s" k.Ast.k_name m))
  in
  Opt.optimize ~level:options.opt_level lowered.Lower.items

(* The verify phase is shared by cold compiles and cache hits: a hit
   skips every synthesis phase but never the gate. *)
let verify_gate ~name kernel =
  (match Sass.Program.validate kernel with
   | Ok () -> ()
   | Error m ->
     raise
       (Compile_error
          (Printf.sprintf "%s: emitted invalid SASS: %s" name m)));
  match verify kernel with
  | Ok () -> kernel
  | Error m ->
    raise
      (Compile_error
         (Printf.sprintf "%s: verifier rejected emitted SASS: %s" name m))

let compile ?(options = default_options) k =
  let phase name f = Obs.Tracer.with_span ~cat:"compile" name f in
  match
    Cache.lookup ~max_regs:options.max_regs ~opt_level:options.opt_level k
  with
  | Some kernel ->
    (* Content hit: typecheck/lower/optimize/regalloc/emit all skipped;
       the verifier still gates what we hand out. *)
    Obs.Tracer.with_span ~cat:"compile"
      ~attrs:[ ("kernel", Obs.Span.Str k.Ast.k_name);
               ("opt_level", Obs.Span.Int options.opt_level);
               ("cache", Obs.Span.Str "hit") ]
      ("compile:" ^ k.Ast.k_name)
      (fun () -> phase "verify" (fun () -> verify_gate ~name:k.Ast.k_name kernel))
  | None ->
  Obs.Tracer.with_span ~cat:"compile"
    ~attrs:[ ("kernel", Obs.Span.Str k.Ast.k_name);
             ("opt_level", Obs.Span.Int options.opt_level) ]
    ("compile:" ^ k.Ast.k_name)
    (fun () ->
       phase "typecheck" (fun () ->
           match Typecheck.check k with
           | Ok () -> ()
           | Error e -> raise (Compile_error (Typecheck.error_to_string e)));
       let lowered =
         phase "lower" (fun () ->
             try Lower.lower k with
             | Lower.Lower_error m ->
               raise (Compile_error (Printf.sprintf "%s: %s" k.Ast.k_name m)))
       in
       let optimized =
         phase "optimize" (fun () ->
             Opt.optimize ~level:options.opt_level lowered.Lower.items)
       in
       let allocated =
         phase "regalloc" (fun () ->
             try Regalloc.allocate ~max_regs:options.max_regs optimized with
             | Regalloc.Alloc_error m ->
               raise (Compile_error (Printf.sprintf "%s: %s" k.Ast.k_name m)))
       in
       let kernel =
         phase "emit" (fun () ->
             try
               Emit.emit ~name:k.Ast.k_name ~nparams:lowered.Lower.nparams
                 ~shared_bytes:lowered.Lower.shared_bytes
                 ~frame_bytes:allocated.Regalloc.frame_bytes
                 allocated.Regalloc.items
             with
             | Emit.Emit_error m ->
               raise (Compile_error (Printf.sprintf "%s: %s" k.Ast.k_name m)))
       in
       let kernel =
         phase "verify" (fun () -> verify_gate ~name:k.Ast.k_name kernel)
       in
       (* Only verified kernels enter the cache, so hits re-verify a
          kernel that has passed the gate at least once already. *)
       Cache.store ~max_regs:options.max_regs ~opt_level:options.opt_level k
         kernel;
       kernel)
