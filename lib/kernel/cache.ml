(* Process-global content-addressed compile cache with an LRU byte
   bound.

   The content address is a digest over Marshal.No_sharing output of
   (AST, max_regs, opt_level): No_sharing makes the byte stream purely
   structural, so two structurally equal ASTs built by different code
   paths hash identically. The AST is immutable data (no closures, no
   mutable fields), which is what makes marshaling it sound.

   Size accounting uses the marshaled length of the *compiled* kernel:
   not the heap footprint to the byte, but monotone in it and cheap,
   which is all an eviction budget needs. Recency is a global tick;
   eviction scans for the minimum, which is fine at the tens-of-
   entries scale a kernel cache lives at. *)

type entry = {
  e_kernel : Sass.Program.kernel;
  e_bytes : int;
  mutable e_tick : int;
}

type t = {
  mutable on : bool;
  mutable max_bytes : int;
  mutable bytes : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  table : (string, entry) Hashtbl.t;
}

type stats = {
  c_hits : int;
  c_misses : int;
  c_evictions : int;
  c_entries : int;
  c_bytes : int;
  c_max_bytes : int;
}

let default_max_bytes = 16 * 1024 * 1024

let lock = Mutex.create ()

let state =
  { on = false;
    max_bytes = default_max_bytes;
    bytes = 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    table = Hashtbl.create 64 }

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let drop_entries () =
  Hashtbl.reset state.table;
  state.bytes <- 0

let enable ?(max_bytes = default_max_bytes) () =
  if max_bytes <= 0 then
    invalid_arg
      (Printf.sprintf "Kernel.Cache.enable: max_bytes must be positive (got %d)"
         max_bytes);
  locked (fun () ->
      drop_entries ();
      state.on <- true;
      state.max_bytes <- max_bytes;
      state.tick <- 0;
      state.hits <- 0;
      state.misses <- 0;
      state.evictions <- 0)

let disable () =
  locked (fun () ->
      state.on <- false;
      drop_entries ())

let enabled () = locked (fun () -> state.on)

let clear () = locked drop_entries

let key ~max_regs ~opt_level (k : Ast.kernel) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string (k, max_regs, opt_level) [ Marshal.No_sharing ]))

(* Shared instruction records are immutable; only the array spine
   could be written through, so a spine copy fully isolates callers. *)
let publish (k : Sass.Program.kernel) =
  { k with Sass.Program.instrs = Array.copy k.Sass.Program.instrs }

let lookup ~max_regs ~opt_level ast =
  locked (fun () ->
      if not state.on then None
      else
        match Hashtbl.find_opt state.table (key ~max_regs ~opt_level ast) with
        | Some e ->
          state.hits <- state.hits + 1;
          state.tick <- state.tick + 1;
          e.e_tick <- state.tick;
          Some (publish e.e_kernel)
        | None ->
          state.misses <- state.misses + 1;
          None)

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
         match acc with
         | Some (_, oldest) when oldest.e_tick <= e.e_tick -> acc
         | _ -> Some (key, e))
      state.table None
  in
  match victim with
  | None -> ()
  | Some (key, e) ->
    Hashtbl.remove state.table key;
    state.bytes <- state.bytes - e.e_bytes;
    state.evictions <- state.evictions + 1

let store ~max_regs ~opt_level ast kernel =
  locked (fun () ->
      if state.on then begin
        let key = key ~max_regs ~opt_level ast in
        if not (Hashtbl.mem state.table key) then begin
          let bytes =
            String.length (Marshal.to_string kernel [ Marshal.No_sharing ])
          in
          if bytes <= state.max_bytes then begin
            while state.bytes + bytes > state.max_bytes do
              evict_lru ()
            done;
            state.tick <- state.tick + 1;
            Hashtbl.replace state.table key
              { e_kernel = publish kernel; e_bytes = bytes;
                e_tick = state.tick };
            state.bytes <- state.bytes + bytes
          end
        end
      end)

let stats () =
  locked (fun () ->
      { c_hits = state.hits;
        c_misses = state.misses;
        c_evictions = state.evictions;
        c_entries = Hashtbl.length state.table;
        c_bytes = state.bytes;
        c_max_bytes = state.max_bytes })

let register_telemetry reg =
  let open Telemetry.Registry in
  register reg ~help:"Compile-cache hits (full pipeline skipped)"
    "sassi_cache_hits_total"
    (Counter (fun () -> (stats ()).c_hits));
  register reg ~help:"Compile-cache misses (full pipeline ran)"
    "sassi_cache_misses_total"
    (Counter (fun () -> (stats ()).c_misses));
  register reg ~help:"Compile-cache LRU evictions"
    "sassi_cache_evictions_total"
    (Counter (fun () -> (stats ()).c_evictions));
  register reg ~help:"Compile-cache resident entries" "sassi_cache_entries"
    (Gauge (fun () -> float_of_int (stats ()).c_entries));
  register reg ~help:"Compile-cache resident bytes"
    "sassi_cache_resident_bytes"
    (Gauge (fun () -> float_of_int (stats ()).c_bytes));
  register reg ~help:"Compile-cache byte budget" "sassi_cache_max_bytes"
    (Gauge (fun () -> float_of_int (stats ()).c_max_bytes))
