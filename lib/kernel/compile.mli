(** The backend compiler driver: typecheck, lower, optimize, allocate
    registers, and emit SASS. This is the [ptxas] analogue; the SASSI
    instrumentation pass runs after it, on the emitted kernel. *)

exception Compile_error of string

type options = {
  max_regs : int;  (** register budget ([-maxrregcount]) *)
  opt_level : int;  (** 0: none, 1: fold/propagate/DCE (default) *)
}

val default_options : options

val compile : ?options:options -> Ast.kernel -> Sass.Program.kernel
(** @raise Compile_error on type, lowering, allocation, or emission
    failures (with a readable message), and when the post-regalloc
    verifier gate ({!Analysis.Verifier.gate}) finds a definite bug in
    the emitted SASS (uninitialized read, divergent barrier).

    When {!Cache} is enabled, a content hit on (AST, options) skips
    every synthesis phase and returns the cached kernel — after
    running the same verifier gate a cold compile runs. *)

val verify : Sass.Program.kernel -> (unit, string) result
(** The verifier gate [compile] runs on its own output; exposed so
    tests can prove the gate rejects a miscompiled kernel. *)

val compile_vir : ?options:options -> Ast.kernel -> Vir.item array
(** Stops after optimization; exposed for tests and ablations. *)
