(** Content-addressed compile cache.

    Keys are digests of the kernel AST plus the compile configuration
    ([max_regs], [opt_level]), so a cache hit is exactly "this source,
    these options, compiled before" — hot kernels in repeat traffic
    (the serving story: the same workload POSTed to the daemon over
    and over) skip typecheck/lower/optimize/regalloc/emit entirely.
    The verifier gate still runs on every hit; correctness is never
    cached.

    The cache is one process-global table, off by default, guarded by
    a mutex so pool domains can compile concurrently. Residency is
    bounded by an LRU byte budget; {!stats} and
    {!register_telemetry} expose hits/misses/evictions for the
    [/metrics] scrape ([sassi_cache_*] series). Cached kernels are
    returned with a fresh instruction array, so callers that rewrite
    kernels in place can never corrupt the cache. *)

type stats = {
  c_hits : int;
  c_misses : int;  (** lookups while enabled that found nothing *)
  c_evictions : int;  (** entries dropped to stay under the byte budget *)
  c_entries : int;  (** resident entries *)
  c_bytes : int;  (** resident bytes (marshaled-kernel accounting) *)
  c_max_bytes : int;
}

val default_max_bytes : int
(** 16 MiB. *)

val enable : ?max_bytes:int -> unit -> unit
(** Turn the cache on with an empty table and zeroed counters.
    @raise Invalid_argument if [max_bytes <= 0]. *)

val disable : unit -> unit
(** Turn the cache off and drop every entry (counters are kept until
    the next {!enable} so a post-run scrape still sees them). *)

val enabled : unit -> bool

val clear : unit -> unit
(** Drop every entry; keeps the enabled state and counters. *)

val key : max_regs:int -> opt_level:int -> Ast.kernel -> string
(** The content address: hex digest over a canonical (unshared)
    serialization of the AST and the compile options. *)

val lookup : max_regs:int -> opt_level:int -> Ast.kernel -> Sass.Program.kernel option
(** [Some kernel] on a hit (bumps the entry's recency and the hit
    counter; the returned kernel's instruction array is a fresh
    copy). [None] when disabled (not counted) or on a miss
    (counted). *)

val store :
  max_regs:int -> opt_level:int -> Ast.kernel -> Sass.Program.kernel -> unit
(** Insert a compiled kernel, evicting least-recently-used entries
    until the byte budget holds. No-op when disabled, when the entry
    alone exceeds the whole budget, or when the key is already
    resident. *)

val stats : unit -> stats

val register_telemetry : Telemetry.Registry.t -> unit
(** Register [sassi_cache_{hits,misses,evictions}_total] counters and
    [sassi_cache_{entries,resident_bytes,max_bytes}] gauges. *)
