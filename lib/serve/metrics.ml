(* Every label combination is registered up front at [create]: the
   registry's spec list is only ever read after that, so exporters can
   snapshot it from any thread without racing a registration. *)

let endpoints =
  [ "metrics"; "healthz"; "readyz"; "jobs"; "job"; "manifest"; "trace";
    "shutdown"; "other" ]

let status_classes = [ "2xx"; "4xx"; "5xx" ]

type t = {
  registry : Telemetry.Registry.t;
  started_at : float;
  lock : Mutex.t;
  requests : (string * int ref) list;  (* per endpoint *)
  responses : (string * int ref) list;  (* per status class *)
  request_us : Telemetry.Hist.t;
  mutable in_flight : int;
  jobs_submitted : int ref;
  jobs_completed : int ref;
  jobs_failed : int ref;
  job_us : Telemetry.Hist.t;
  job_stats : (string * int ref) list;
  mutable jobs_source : unit -> int * int * int * int;
}

let create () =
  let registry = Telemetry.Registry.create () in
  let bi = Telemetry.Build_info.collect () in
  Telemetry.Registry.gauge registry
    ~labels:
      [ ("version", bi.Telemetry.Build_info.bi_version);
        ("profile", bi.Telemetry.Build_info.bi_profile);
        ("ocaml", bi.Telemetry.Build_info.bi_ocaml);
        ("os", bi.Telemetry.Build_info.bi_os) ]
    ~help:"Build provenance (value is always 1)" "sassi_build_info"
    (fun () -> 1.0);
  let started_at = Unix.gettimeofday () in
  Telemetry.Registry.gauge registry
    ~help:"Seconds since the daemon started" "sassi_uptime_seconds"
    (fun () -> Unix.gettimeofday () -. started_at);
  let requests =
    List.map
      (fun ep ->
         ( ep,
           Telemetry.Registry.counter registry
             ~labels:[ ("endpoint", ep) ]
             ~help:"HTTP requests served, by endpoint"
             "sassi_serve_requests_total" ))
      endpoints
  in
  let responses =
    List.map
      (fun cls ->
         ( cls,
           Telemetry.Registry.counter registry
             ~labels:[ ("class", cls) ]
             ~help:"HTTP responses sent, by status class"
             "sassi_serve_responses_total" ))
      status_classes
  in
  let request_us =
    Telemetry.Registry.histogram registry
      ~help:"Request handling latency in microseconds"
      "sassi_serve_request_duration_us"
  in
  let t =
    { registry;
      started_at;
      lock = Mutex.create ();
      requests;
      responses;
      request_us;
      in_flight = 0;
      jobs_submitted =
        Telemetry.Registry.counter registry
          ~help:"Jobs accepted via POST /jobs" "sassi_serve_jobs_submitted_total";
      jobs_completed =
        Telemetry.Registry.counter registry
          ~help:"Jobs finished successfully" "sassi_serve_jobs_completed_total";
      jobs_failed =
        Telemetry.Registry.counter registry
          ~help:"Jobs that ended in failure" "sassi_serve_jobs_failed_total";
      job_us =
        Telemetry.Registry.histogram registry
          ~help:"Served job execution time in microseconds"
          "sassi_serve_job_duration_us";
      job_stats =
        List.map
          (fun (name, _) ->
             ( name,
               Telemetry.Registry.counter registry
                 ~help:"Device stat accumulated over every served job"
                 (Printf.sprintf "sassi_job_%s_total" name) ))
          (Gpu.Stats.to_assoc (Gpu.Stats.create ()));
      jobs_source = (fun () -> (0, 0, 0, 0)) }
  in
  Telemetry.Registry.gauge registry
    ~help:"Requests currently being handled" "sassi_serve_in_flight"
    (fun () ->
       Mutex.lock t.lock;
       let v = t.in_flight in
       Mutex.unlock t.lock;
       float_of_int v);
  let job_gauge name help pick =
    Telemetry.Registry.gauge registry ~help name (fun () ->
        let q, r, d, f = t.jobs_source () in
        float_of_int (pick (q, r, d, f)))
  in
  job_gauge "sassi_serve_jobs_queued" "Jobs waiting to run"
    (fun (q, _, _, _) -> q);
  job_gauge "sassi_serve_jobs_running" "Jobs executing right now"
    (fun (_, r, _, _) -> r);
  t

let registry t = t.registry

let attach_pool t pool = Par.Pool.register_telemetry pool t.registry

let attach_cache t = Kernel.Cache.register_telemetry t.registry

let set_jobs_source t f = t.jobs_source <- f

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let request_begin t = locked t (fun () -> t.in_flight <- t.in_flight + 1)

let class_of code =
  if code >= 500 then "5xx" else if code >= 400 then "4xx" else "2xx"

let bump assoc key =
  match List.assoc_opt key assoc with
  | Some r -> incr r
  | None -> (match List.assoc_opt "other" assoc with
             | Some r -> incr r
             | None -> ())

let request_end t ~endpoint ~code ~duration_us =
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      bump t.requests endpoint;
      bump t.responses (class_of code);
      Telemetry.Hist.observe t.request_us duration_us)

let job_submitted t = locked t (fun () -> incr t.jobs_submitted)

let job_finished t ~ok ~duration_us =
  locked t (fun () ->
      incr (if ok then t.jobs_completed else t.jobs_failed);
      Telemetry.Hist.observe t.job_us duration_us)

let observe_job_stats t stats =
  locked t (fun () ->
      List.iter
        (fun (name, v) ->
           match List.assoc_opt name t.job_stats with
           | Some r -> r := !r + v
           | None -> ())
        (Gpu.Stats.to_assoc stats))
