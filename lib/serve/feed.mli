(** The daemon's live activity feed: a bounded {!Trace.Ring} of
    sequence-stamped activity records that served jobs append to and
    [GET /trace] streams from. The ring's [Drop_oldest] policy bounds
    memory no matter how far a slow follower lags — a laggard simply
    misses the overwritten records, visible as a gap in the sequence
    numbers it receives (and in {!dropped}). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 records. *)

val push_batch : t -> Trace.Record.t list -> unit
(** Append records (stamping each with the next sequence number) and
    wake every waiting follower. *)

val snapshot : t -> (int * Trace.Record.t) list
(** Resident [(seq, record)] pairs, oldest first. *)

val wait_beyond : t -> seq:int -> timeout_s:float -> (int * Trace.Record.t) list
(** Block until records with sequence number [> seq] are resident,
    the feed closes, or the timeout elapses; returns those records
    (possibly [] on timeout/close). *)

val pushed : t -> int
(** Records ever appended; the next record gets sequence [pushed+1]. *)

val dropped : t -> int
(** Records overwritten by the ring's overflow policy. *)

val close : t -> unit
(** Mark the feed finished and wake all followers; pushes become
    no-ops. *)

val closed : t -> bool
