(* One mutex guards the whole table; the scheduler thread is the only
   writer of job transitions, request threads only read snapshots.
   Jobs execute strictly in submission order on the shared pool — the
   determinism story of a served campaign is then exactly the CLI's. *)

type state =
  | Queued
  | Running
  | Done
  | Failed of string

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"

type job = {
  jb_id : string;
  jb_spec : Par.Campaign.t;
  jb_submitted_s : float;
  jb_state : state;
  jb_started_s : float option;
  jb_finished_s : float option;
  jb_wall_time_s : float option;
  jb_manifest : Telemetry.Manifest.t option;
  jb_tally : Workloads.Campaign.tally option;
  jb_stats : Gpu.Stats.t option;
}

type t = {
  pool : Par.Pool.t;
  activity : (Trace.Record.t list -> unit) option;
  on_done : (job -> unit) option;
  lock : Mutex.t;
  cond : Condition.t;  (* signaled on submit and stop *)
  table : (string, job) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  mutable queue : string list;  (* newest first; drained from the tail *)
  mutable next_id : int;
  mutable stopping : bool;
  mutable scheduler : Thread.t option;
}

let create ~pool ?activity ?on_done () =
  { pool;
    activity;
    on_done;
    lock = Mutex.create ();
    cond = Condition.create ();
    table = Hashtbl.create 64;
    order = [];
    queue = [];
    next_id = 0;
    stopping = false;
    scheduler = None }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let update t id f =
  match Hashtbl.find_opt t.table id with
  | None -> None
  | Some j ->
    let j' = f j in
    Hashtbl.replace t.table id j';
    Some j'

(* Pop the oldest queued id, or wait; None means stop. *)
let next_job t =
  Mutex.lock t.lock;
  let rec go () =
    match List.rev t.queue with
    | id :: _ ->
      t.queue <- List.filter (fun x -> x <> id) t.queue;
      Mutex.unlock t.lock;
      Some id
    | [] ->
      if t.stopping then begin
        Mutex.unlock t.lock;
        None
      end
      else begin
        Condition.wait t.cond t.lock;
        go ()
      end
  in
  go ()

let finish t id f =
  let done_job =
    locked t (fun () ->
        update t id (fun j ->
            f { j with jb_finished_s = Some (Unix.gettimeofday ()) }))
  in
  match (done_job, t.on_done) with
  | Some j, Some cb -> cb j
  | _ -> ()

let run_one t id =
  let spec =
    locked t (fun () ->
        match
          update t id (fun j ->
              { j with jb_state = Running;
                jb_started_s = Some (Unix.gettimeofday ()) })
        with
        | Some j -> Some j.jb_spec
        | None -> None)
  in
  match spec with
  | None -> ()
  | Some spec ->
    (match
       Runner.run ~pool:t.pool
         ?activity:(Option.map (fun f _i records -> f records) t.activity)
         spec
     with
     | Ok outcome ->
       finish t id (fun j ->
           { j with jb_state = Done;
             jb_wall_time_s = Some outcome.Runner.o_wall_time_s;
             jb_manifest = Some outcome.Runner.o_manifest;
             jb_tally = Some outcome.Runner.o_tally;
             jb_stats = Some outcome.Runner.o_stats })
     | Error msg -> finish t id (fun j -> { j with jb_state = Failed msg })
     | exception e ->
       finish t id (fun j ->
           { j with jb_state = Failed (Printexc.to_string e) }))

let scheduler_loop t =
  let rec go () =
    match next_job t with
    | None -> ()
    | Some id ->
      run_one t id;
      go ()
  in
  go ()

let start t =
  locked t (fun () ->
      if t.scheduler = None then
        t.scheduler <- Some (Thread.create scheduler_loop t))

let submit t spec =
  let job =
    locked t (fun () ->
        if t.stopping then invalid_arg "Jobs.submit: daemon is shutting down";
        t.next_id <- t.next_id + 1;
        let id = Printf.sprintf "job-%d" t.next_id in
        let job =
          { jb_id = id;
            jb_spec = spec;
            jb_submitted_s = Unix.gettimeofday ();
            jb_state = Queued;
            jb_started_s = None;
            jb_finished_s = None;
            jb_wall_time_s = None;
            jb_manifest = None;
            jb_tally = None;
            jb_stats = None }
        in
        Hashtbl.replace t.table id job;
        t.order <- id :: t.order;
        t.queue <- id :: t.queue;
        Condition.broadcast t.cond;
        job)
  in
  job

let find t id = locked t (fun () -> Hashtbl.find_opt t.table id)

let list t =
  locked t (fun () ->
      List.rev_map (fun id -> Hashtbl.find t.table id) t.order)

let counts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun _ j (q, r, d, f) ->
           match j.jb_state with
           | Queued -> (q + 1, r, d, f)
           | Running -> (q, r + 1, d, f)
           | Done -> (q, r, d + 1, f)
           | Failed _ -> (q, r, d, f + 1))
        t.table (0, 0, 0, 0))

let drained t =
  let q, r, _, _ = counts t in
  q = 0 && r = 0

let stop t =
  let th =
    locked t (fun () ->
        t.stopping <- true;
        (* Jobs still queued will never run; fail them now so pollers
           see a terminal state instead of an eternal "queued". *)
        List.iter
          (fun id ->
             ignore
               (update t id (fun j ->
                    match j.jb_state with
                    | Queued -> { j with jb_state = Failed "server shutdown" }
                    | _ -> j)))
          t.queue;
        t.queue <- [];
        Condition.broadcast t.cond;
        let th = t.scheduler in
        t.scheduler <- None;
        th)
  in
  Option.iter Thread.join th
