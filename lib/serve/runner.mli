(** The one campaign-execution engine behind both `sassi_run campaign`
    and the daemon's job API. Factoring it here is what makes the
    acceptance property structural: a job POSTed to the daemon and the
    same campaign run from the CLI execute this exact code, so their
    manifests are byte-identical by construction, not by testing.

    Manifests produced here are fully deterministic artifacts: the
    [argv] field is the canonical [["campaign"; name]] and the wall
    time is recorded as 0.0 (real wall time is returned separately for
    display) — so the same campaign yields the same manifest bytes
    from any entry point, any [--jobs] width, on any host. *)

type job_result =
  | R_run of Workloads.Workload.result  (** a plain device run *)
  | R_inject of Workloads.Campaign.detail  (** a fault-injection campaign *)

type outcome = {
  o_results : job_result array;  (** in job order *)
  o_tally : Workloads.Campaign.tally;  (** aggregate over [Inject] jobs *)
  o_stats : Gpu.Stats.t;  (** deterministic merge over all jobs *)
  o_manifest : Telemetry.Manifest.t;  (** canonical, see above *)
  o_wall_time_s : float;  (** measured; never inside the manifest *)
}

val variant_of : Par.Campaign.t -> int -> string
(** The job's variant, defaulting to the workload's. Call only after
    {!run} (or workload resolution) has validated the campaign. *)

val run :
  pool:Par.Pool.t ->
  ?trace_kinds:Cupti.Activity.kind list ->
  ?activity:(int -> Trace.Record.t list -> unit) ->
  ?on_result:(int -> job_result -> unit) ->
  Par.Campaign.t ->
  (outcome, string) result
(** Execute every job of the campaign on the pool, streaming
    [on_result] (and each [Run] job's activity records to [activity],
    collected under [trace_kinds], default [[Kernel]]) in strict job
    order. Per-job seeds split from the campaign seed exactly as the
    CLI always did. Errors (no jobs, unknown workload) are returned,
    not printed — the CLI maps them to exit codes, the daemon to a
    failed job. *)

val aggregate_counters : outcome -> Par.Campaign.t -> (string * int) list
(** The deterministic counter block embedded in campaign manifests
    (tally sums, then merged device stats); exposed for reports. *)
