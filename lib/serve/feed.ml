(* Mutex around a Trace.Ring of (seq, record). Sequence numbers are
   the ring's own pushed count, so followers can detect gaps caused by
   Drop_oldest overwrites without any extra state.

   Followers poll in short slices instead of blocking on a condition:
   the stdlib Condition has no timed wait, and a 50 ms poll is far
   below scrape/stream latency anyone can observe while keeping the
   implementation free of waker threads. *)

type t = {
  lock : Mutex.t;
  ring : (int * Trace.Record.t) Trace.Ring.t;
  mutable finished : bool;
}

let create ?(capacity = 65536) () =
  { lock = Mutex.create ();
    ring = Trace.Ring.create ~policy:Trace.Ring.Drop_oldest ~capacity ();
    finished = false }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let push_batch t records =
  locked t (fun () ->
      if not t.finished then
        List.iter
          (fun r -> Trace.Ring.push t.ring (Trace.Ring.pushed t.ring + 1, r))
          records)

let snapshot t = locked t (fun () -> Trace.Ring.to_list t.ring)

let beyond ~seq rs = List.filter (fun (s, _) -> s > seq) rs

let wait_beyond t ~seq ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let fresh, stop =
      locked t (fun () ->
          (beyond ~seq (Trace.Ring.to_list t.ring), t.finished))
    in
    if fresh <> [] || stop || Unix.gettimeofday () >= deadline then fresh
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

let pushed t = locked t (fun () -> Trace.Ring.pushed t.ring)

let dropped t = locked t (fun () -> Trace.Ring.dropped t.ring)

let close t = locked t (fun () -> t.finished <- true)

let closed t = locked t (fun () -> t.finished)
