(* Hand-rolled HTTP/1.1 reader/writer over stdlib channels. The daemon
   speaks to curl, Prometheus, and the in-tree test client; it does
   not try to be a general server: one request per connection,
   explicit limits on line length, header count, and body size, and
   every parse error is a typed Bad_request the daemon maps to 400. *)

type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_headers : (string * string) list;
  rq_body : string;
}

exception Bad_request of string

let max_line_bytes = 8192
let max_headers = 100
let max_body_bytes = 8 * 1024 * 1024

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_request m)) fmt

(* [input_line] minus the CR of CRLF line endings; length-capped so a
   hostile peer cannot grow an unbounded buffer. *)
let read_line ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
    if String.length line > max_line_bytes then bad "request line too long";
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then Some (String.sub line 0 (n - 1))
    else Some line

let split_query target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some i ->
    let path = String.sub target 0 i in
    let qs = String.sub target (i + 1) (String.length target - i - 1) in
    let params =
      String.split_on_char '&' qs
      |> List.filter (fun s -> s <> "")
      |> List.map (fun kv ->
          match String.index_opt kv '=' with
          | None -> (kv, "")
          | Some j ->
            ( String.sub kv 0 j,
              String.sub kv (j + 1) (String.length kv - j - 1) ))
    in
    (path, params)

let read_headers ic =
  let rec go acc n =
    if n > max_headers then bad "too many headers";
    match read_line ic with
    | None -> bad "connection closed inside headers"
    | Some "" -> List.rev acc
    | Some line ->
      (match String.index_opt line ':' with
       | None -> bad "malformed header line"
       | Some i ->
         let name = String.lowercase_ascii (String.sub line 0 i) in
         let value =
           String.trim (String.sub line (i + 1) (String.length line - i - 1))
         in
         go ((name, value) :: acc) (n + 1))
  in
  go [] 0

let read_request ic =
  match read_line ic with
  | None -> None
  | Some "" -> bad "empty request line"
  | Some line ->
    (match String.split_on_char ' ' line with
     | [ meth; target; version ]
       when version = "HTTP/1.1" || version = "HTTP/1.0" ->
       let headers = read_headers ic in
       let body =
         match List.assoc_opt "content-length" headers with
         | None -> ""
         | Some v ->
           (match int_of_string_opt (String.trim v) with
            | None -> bad "invalid Content-Length"
            | Some n when n < 0 -> bad "invalid Content-Length"
            | Some n when n > max_body_bytes -> bad "body too large"
            | Some n ->
              let b = Bytes.create n in
              (try really_input ic b 0 n
               with End_of_file -> bad "connection closed inside body");
              Bytes.to_string b)
       in
       let path, query = split_query target in
       Some
         { rq_method = String.uppercase_ascii meth;
           rq_path = path;
           rq_query = query;
           rq_headers = headers;
           rq_body = body }
     | _ -> bad "malformed request line")

let header rq name = List.assoc_opt (String.lowercase_ascii name) rq.rq_headers

let query rq name = List.assoc_opt name rq.rq_query

let reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Unknown"

let write_head ?(content_type = "text/plain; charset=utf-8") ?content_length
    ?(extra_headers = []) ~code oc =
  Printf.fprintf oc "HTTP/1.1 %d %s\r\n" code (reason code);
  Printf.fprintf oc "Content-Type: %s\r\n" content_type;
  (match content_length with
   | Some n -> Printf.fprintf oc "Content-Length: %d\r\n" n
   | None -> ());
  List.iter (fun (k, v) -> Printf.fprintf oc "%s: %s\r\n" k v) extra_headers;
  output_string oc "Connection: close\r\n\r\n"

let respond ?content_type ?extra_headers ~code oc body =
  write_head ?content_type ?extra_headers
    ~content_length:(String.length body) ~code oc;
  output_string oc body;
  flush oc;
  String.length body

let respond_json ~code oc json =
  respond ~content_type:"application/json" ~code oc
    (Trace.Json.to_string json ^ "\n")

let error_json ~code oc msg =
  respond_json ~code oc (Trace.Json.Obj [ ("error", Trace.Json.Str msg) ])

let start_stream ?(content_type = "application/x-ndjson") ~code oc =
  write_head ~content_type ~code oc;
  flush oc
