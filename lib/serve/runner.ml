(* Campaign execution, shared verbatim by the CLI subcommand and the
   daemon's job scheduler. The logic is a straight factoring of what
   `sassi_run campaign` used to do inline, with two deliberate
   changes:

   - errors return instead of exiting, so a daemon job that names an
     unknown workload fails that job, not the server;
   - the manifest is a canonical artifact (argv = ["campaign"; name],
     wall time 0.0): byte-identical across entry points and --jobs
     widths. Measured wall time is returned on the side for display.

   Run jobs optionally collect CUPTI-style activity records (kernel
   launches/exits by default). Records are flushed per job and handed
   to the [activity] callback from the ordered result stream on the
   calling domain — so feed consumers see job batches in job order,
   never interleaved mid-job. *)

type job_result =
  | R_run of Workloads.Workload.result
  | R_inject of Workloads.Campaign.detail

type outcome = {
  o_results : job_result array;
  o_tally : Workloads.Campaign.tally;
  o_stats : Gpu.Stats.t;
  o_manifest : Telemetry.Manifest.t;
  o_wall_time_s : float;
}

let resolve (camp : Par.Campaign.t) =
  let rec go acc = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | (j : Par.Campaign.job) :: rest ->
      (match Workloads.Registry.find_opt j.Par.Campaign.j_workload with
       | Some w -> go (w :: acc) rest
       | None ->
         Error
           (Printf.sprintf "unknown workload %s in campaign %s"
              j.Par.Campaign.j_workload camp.Par.Campaign.c_name))
  in
  go [] camp.Par.Campaign.c_jobs

let variant_of (camp : Par.Campaign.t) i =
  let j = List.nth camp.Par.Campaign.c_jobs i in
  match j.Par.Campaign.j_variant with
  | Some v -> v
  | None ->
    (match Workloads.Registry.find_opt j.Par.Campaign.j_workload with
     | Some w -> w.Workloads.Workload.default_variant
     | None -> invalid_arg "Runner.variant_of: unresolved workload")

let zero_tally =
  { Workloads.Campaign.masked = 0; crashes = 0; hangs = 0;
    failure_symptoms = 0; sdc_stdout = 0; sdc_output = 0; total = 0 }

let add_tally a (t : Workloads.Campaign.tally) =
  { Workloads.Campaign.masked = a.Workloads.Campaign.masked + t.Workloads.Campaign.masked;
    crashes = a.Workloads.Campaign.crashes + t.Workloads.Campaign.crashes;
    hangs = a.Workloads.Campaign.hangs + t.Workloads.Campaign.hangs;
    failure_symptoms =
      a.Workloads.Campaign.failure_symptoms + t.Workloads.Campaign.failure_symptoms;
    sdc_stdout = a.Workloads.Campaign.sdc_stdout + t.Workloads.Campaign.sdc_stdout;
    sdc_output = a.Workloads.Campaign.sdc_output + t.Workloads.Campaign.sdc_output;
    total = a.Workloads.Campaign.total + t.Workloads.Campaign.total }

let stats_of = function
  | R_run r -> r.Workloads.Workload.stats
  | R_inject d -> d.Workloads.Campaign.d_stats

let aggregate_tally results =
  Array.fold_left
    (fun acc r ->
       match r with
       | R_inject d -> add_tally acc d.Workloads.Campaign.d_tally
       | R_run _ -> acc)
    zero_tally results

let aggregate_counters outcome (camp : Par.Campaign.t) =
  let t = outcome.o_tally in
  ("jobs_total", List.length camp.Par.Campaign.c_jobs)
  :: ("masked", t.Workloads.Campaign.masked)
  :: ("crashes", t.Workloads.Campaign.crashes)
  :: ("hangs", t.Workloads.Campaign.hangs)
  :: ("failure_symptoms", t.Workloads.Campaign.failure_symptoms)
  :: ("sdc_stdout", t.Workloads.Campaign.sdc_stdout)
  :: ("sdc_output", t.Workloads.Campaign.sdc_output)
  :: ("injections_total", t.Workloads.Campaign.total)
  :: Gpu.Stats.to_assoc outcome.o_stats

let manifest ~counters camp =
  { Telemetry.Manifest.m_workload = "campaign/" ^ camp.Par.Campaign.c_name;
    m_variant = "matrix";
    m_instrument = "campaign";
    m_seed = camp.Par.Campaign.c_seed;
    (* Canonical, not Sys.argv: the same campaign must produce the
       same manifest bytes whether it arrived via the CLI or POST
       /jobs. Wall time is deliberately 0.0 for the same reason. *)
    m_argv = [ "campaign"; camp.Par.Campaign.c_name ];
    m_wall_time_s = 0.0;
    m_build = Telemetry.Build_info.collect ();
    m_config = Gpu.Config.to_assoc Gpu.Config.default;
    m_counters = counters;
    m_metrics = [];
    m_histograms = [] }

let run ~pool ?(trace_kinds = [ Cupti.Activity.Kernel ]) ?activity
    ?(on_result = fun _ _ -> ()) (camp : Par.Campaign.t) =
  match resolve camp with
  | Error _ as e -> e
  | Ok resolved ->
    let jobs_arr = Array.of_list camp.Par.Campaign.c_jobs in
    let njobs = Array.length jobs_arr in
    if njobs = 0 then
      Error (Printf.sprintf "campaign %s has no jobs" camp.Par.Campaign.c_name)
    else begin
      let tasks =
        Array.mapi
          (fun i (j : Par.Campaign.job) ->
             let w = resolved.(i) in
             let variant =
               match j.Par.Campaign.j_variant with
               | Some v -> v
               | None -> w.Workloads.Workload.default_variant
             in
             let jseed = Par.Campaign.job_seed camp ~index:i in
             fun () ->
               Obs.Tracer.with_span ~cat:"job"
                 ~attrs:
                   [ ("index", Obs.Span.Int i);
                     ("variant", Obs.Span.Str variant);
                     ("seed", Obs.Span.Int jseed) ]
                 (Printf.sprintf "job:%d:%s" i j.Par.Campaign.j_workload)
               @@ fun () ->
               match j.Par.Campaign.j_kind with
               | Par.Campaign.Run ->
                 let device = Gpu.Device.create () in
                 if activity <> None then
                   Cupti.Activity.enable device trace_kinds;
                 let r = w.Workloads.Workload.run device ~variant in
                 let records =
                   if activity <> None then Cupti.Activity.flush device
                   else []
                 in
                 (R_run r, records)
               | Par.Campaign.Inject ->
                 ( R_inject
                     (Workloads.Campaign.run_detailed ~seed:jseed
                        ~injections:j.Par.Campaign.j_injections w ~variant),
                   [] ))
          jobs_arr
      in
      let results, wall_time_s =
        Obs.Clock.with_wall_time @@ fun () ->
        Obs.Tracer.with_span ~cat:"campaign"
          ~attrs:
            [ ("jobs", Obs.Span.Int njobs);
              ("pool", Obs.Span.Int (Par.Pool.size pool)) ]
          ("campaign:" ^ camp.Par.Campaign.c_name)
        @@ fun () ->
        Par.Campaign.run_tasks pool tasks ~on_result:(fun i (r, records) ->
            (match activity with
             | Some f when records <> [] -> f i records
             | _ -> ());
            on_result i r)
      in
      let results = Array.map fst results in
      let merged =
        Obs.Tracer.with_span ~cat:"reduce" "reduce" (fun () ->
            Par.Reduce.stats (Array.map stats_of results))
      in
      let partial =
        { o_results = results;
          o_tally = aggregate_tally results;
          o_stats = merged;
          o_manifest = manifest ~counters:[] camp;
          o_wall_time_s = wall_time_s }
      in
      Ok
        { partial with
          o_manifest =
            manifest ~counters:(aggregate_counters partial camp) camp }
    end
