(* One blocking accept loop, one thread per connection, one scheduler
   thread behind the job API. Request handlers are short (the heavy
   work happens on the pool via the scheduler); the only long-lived
   handlers are /trace followers, which poll the feed in slices and
   end when the feed closes at shutdown. SIGPIPE is ignored so a
   follower that disconnects mid-stream costs us an EPIPE, not the
   process. *)

type config = {
  cfg_host : string;
  cfg_port : int;
  cfg_pool_jobs : int;
  cfg_feed_capacity : int;
  cfg_cache : bool;
  cfg_cache_bytes : int;
  cfg_access_log : out_channel option;
}

let default_config =
  { cfg_host = "127.0.0.1";
    cfg_port = 0;
    cfg_pool_jobs = 2;
    cfg_feed_capacity = 65536;
    cfg_cache = true;
    cfg_cache_bytes = Kernel.Cache.default_max_bytes;
    cfg_access_log = Some stdout }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  actual_port : int;
  pool : Par.Pool.t;
  feed : Feed.t;
  jobs_tbl : Jobs.t;
  mtr : Metrics.t;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable accepting : bool;  (* the run loop owns the listen fd *)
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let create cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.cfg_cache then Kernel.Cache.enable ~max_bytes:cfg.cfg_cache_bytes ();
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.cfg_host, cfg.cfg_port));
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let actual_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.cfg_port
  in
  let pool = Par.Pool.create ~domains:cfg.cfg_pool_jobs () in
  let feed = Feed.create ~capacity:cfg.cfg_feed_capacity () in
  let mtr = Metrics.create () in
  Metrics.attach_pool mtr pool;
  Metrics.attach_cache mtr;
  let on_done (j : Jobs.job) =
    let duration_us =
      match (j.Jobs.jb_wall_time_s, j.Jobs.jb_started_s, j.Jobs.jb_finished_s)
      with
      | Some w, _, _ -> int_of_float (w *. 1e6)
      | None, Some a, Some b -> int_of_float ((b -. a) *. 1e6)
      | _ -> 0
    in
    Metrics.job_finished mtr
      ~ok:(match j.Jobs.jb_state with Jobs.Done -> true | _ -> false)
      ~duration_us;
    Option.iter (Metrics.observe_job_stats mtr) j.Jobs.jb_stats
  in
  let jobs_tbl =
    Jobs.create ~pool ~activity:(Feed.push_batch feed) ~on_done ()
  in
  Jobs.start jobs_tbl;
  Metrics.set_jobs_source mtr (fun () -> Jobs.counts jobs_tbl);
  { cfg;
    listen_fd = fd;
    actual_port;
    pool;
    feed;
    jobs_tbl;
    mtr;
    lock = Mutex.create ();
    stopping = false;
    accepting = false }

let port t = t.actual_port

let jobs t = t.jobs_tbl

let metrics t = t.mtr

let shutdown t =
  let proceed =
    locked t (fun () ->
        if t.stopping then false
        else begin
          t.stopping <- true;
          true
        end)
  in
  if proceed then begin
    (* close(2) does not wake a thread blocked in accept(2); shutting
       the listening socket down does (accept returns EINVAL). The run
       loop closes the fd itself on exit; we close here only when no
       loop ever started. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    if not (locked t (fun () -> t.accepting)) then
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Jobs.stop t.jobs_tbl;
    Feed.close t.feed;
    Par.Pool.shutdown t.pool
  end

(* ---- JSON views ---- *)

let tally_json (ty : Workloads.Campaign.tally) =
  Trace.Json.Obj
    [ ("masked", Trace.Json.Int ty.Workloads.Campaign.masked);
      ("crashes", Trace.Json.Int ty.Workloads.Campaign.crashes);
      ("hangs", Trace.Json.Int ty.Workloads.Campaign.hangs);
      ("failure_symptoms", Trace.Json.Int ty.Workloads.Campaign.failure_symptoms);
      ("sdc_stdout", Trace.Json.Int ty.Workloads.Campaign.sdc_stdout);
      ("sdc_output", Trace.Json.Int ty.Workloads.Campaign.sdc_output);
      ("total", Trace.Json.Int ty.Workloads.Campaign.total) ]

let job_json (j : Jobs.job) =
  let base =
    [ ("id", Trace.Json.Str j.Jobs.jb_id);
      ("state", Trace.Json.Str (Jobs.state_to_string j.Jobs.jb_state));
      ("campaign", Trace.Json.Str j.Jobs.jb_spec.Par.Campaign.c_name);
      ("jobs", Trace.Json.Int (List.length j.Jobs.jb_spec.Par.Campaign.c_jobs));
      ("seed", Trace.Json.Int j.Jobs.jb_spec.Par.Campaign.c_seed);
      ("submitted_s", Trace.Json.Float j.Jobs.jb_submitted_s) ]
  in
  let opt name f v = Option.to_list (Option.map (fun x -> (name, f x)) v) in
  let err =
    match j.Jobs.jb_state with
    | Jobs.Failed msg -> [ ("error", Trace.Json.Str msg) ]
    | _ -> []
  in
  Trace.Json.Obj
    (base
     @ opt "wall_time_s" (fun w -> Trace.Json.Float w) j.Jobs.jb_wall_time_s
     @ opt "tally" tally_json j.Jobs.jb_tally
     @ err)

(* ---- routing ---- *)

let path_parts path =
  List.filter (fun s -> s <> "") (String.split_on_char '/' path)

let endpoint_of req =
  match path_parts req.Http.rq_path with
  | [ "metrics" ] -> "metrics"
  | [ "healthz" ] -> "healthz"
  | [ "readyz" ] -> "readyz"
  | [ "jobs" ] -> "jobs"
  | [ "jobs"; _ ] -> "job"
  | [ "jobs"; _; "manifest" ] -> "manifest"
  | [ "trace" ] -> "trace"
  | [ "shutdown" ] -> "shutdown"
  | _ -> "other"

let handle_metrics t oc =
  let body = Telemetry.Export.prometheus (Metrics.registry t.mtr) in
  ( 200,
    Http.respond ~content_type:"text/plain; version=0.0.4" ~code:200 oc body )

let handle_readyz t oc =
  let q, r, _, _ = Jobs.counts t.jobs_tbl in
  if q = 0 && r = 0 then
    (200, Http.respond_json ~code:200 oc
            (Trace.Json.Obj [ ("status", Trace.Json.Str "ready") ]))
  else
    ( 503,
      Http.respond_json ~code:503 oc
        (Trace.Json.Obj
           [ ("status", Trace.Json.Str "busy");
             ("queued", Trace.Json.Int q);
             ("running", Trace.Json.Int r) ]) )

let handle_post_job t req oc =
  match Par.Campaign.of_string req.Http.rq_body with
  | Error msg -> (400, Http.error_json ~code:400 oc msg)
  | Ok camp ->
    (match Jobs.submit t.jobs_tbl camp with
     | job ->
       Metrics.job_submitted t.mtr;
       ( 202,
         Http.respond_json ~code:202 oc
           (Trace.Json.Obj
              [ ("id", Trace.Json.Str job.Jobs.jb_id);
                ("state",
                 Trace.Json.Str (Jobs.state_to_string job.Jobs.jb_state)) ]) )
     | exception Invalid_argument _ ->
       (503, Http.error_json ~code:503 oc "daemon is shutting down"))

let handle_manifest t id oc =
  match Jobs.find t.jobs_tbl id with
  | None -> (404, Http.error_json ~code:404 oc ("no such job: " ^ id))
  | Some j ->
    (match (j.Jobs.jb_state, j.Jobs.jb_manifest) with
     | Jobs.Done, Some m ->
       (200, Http.respond_json ~code:200 oc (Telemetry.Manifest.to_json m))
     | Jobs.Failed msg, _ ->
       (409, Http.error_json ~code:409 oc ("job failed: " ^ msg))
     | _ ->
       ( 409,
         Http.error_json ~code:409 oc
           ("job not finished: " ^ Jobs.state_to_string j.Jobs.jb_state) ))

let record_lines records =
  let b = Buffer.create 1024 in
  List.iter
    (fun (_, r) ->
       Buffer.add_string b (Trace.Ndjson.record_to_string r);
       Buffer.add_char b '\n')
    records;
  Buffer.contents b

let handle_trace t req oc =
  let max_records =
    Option.bind (Http.query req "max") int_of_string_opt
  in
  let cap rs =
    match max_records with
    | Some n when n >= 0 ->
      let len = List.length rs in
      if len <= n then rs
      else List.filteri (fun i _ -> i >= len - n) rs
    | _ -> rs
  in
  let follow = Http.query req "follow" = Some "1" in
  if not follow then begin
    let body = record_lines (cap (Feed.snapshot t.feed)) in
    (200, Http.respond ~content_type:"application/x-ndjson" ~code:200 oc body)
  end
  else begin
    (* Stream until the feed closes, an optional deadline passes, or
       the client goes away (write failure). *)
    let deadline =
      Option.bind (Http.query req "timeout") float_of_string_opt
      |> Option.map (fun s -> Unix.gettimeofday () +. s)
    in
    Http.start_stream ~content_type:"application/x-ndjson" ~code:200 oc;
    let sent = ref 0 in
    let write records =
      let s = record_lines records in
      output_string oc s;
      flush oc;
      sent := !sent + String.length s
    in
    (try
       let initial = cap (Feed.snapshot t.feed) in
       write initial;
       let last =
         ref (List.fold_left (fun acc (s, _) -> max acc s) 0 initial)
       in
       let expired () =
         match deadline with
         | Some d -> Unix.gettimeofday () >= d
         | None -> false
       in
       let finished () = Feed.closed t.feed || locked t (fun () -> t.stopping) in
       while not (finished () || expired ()) do
         let slice =
           match deadline with
           | Some d -> Float.max 0.05 (Float.min 0.5 (d -. Unix.gettimeofday ()))
           | None -> 0.5
         in
         let fresh = Feed.wait_beyond t.feed ~seq:!last ~timeout_s:slice in
         if fresh <> [] then begin
           write fresh;
           last := List.fold_left (fun acc (s, _) -> max acc s) !last fresh
         end
       done;
       (* Drain anything that raced the close. *)
       let fresh = Feed.wait_beyond t.feed ~seq:!last ~timeout_s:0.0 in
       if fresh <> [] then write fresh
     with Sys_error _ | Unix.Unix_error _ -> ());
    (200, !sent)
  end

let handle t req oc =
  match (req.Http.rq_method, path_parts req.Http.rq_path) with
  | "GET", [ "metrics" ] -> handle_metrics t oc
  | "GET", [ "healthz" ] ->
    (200, Http.respond_json ~code:200 oc
            (Trace.Json.Obj [ ("status", Trace.Json.Str "ok") ]))
  | "GET", [ "readyz" ] -> handle_readyz t oc
  | "GET", [ "jobs" ] ->
    ( 200,
      Http.respond_json ~code:200 oc
        (Trace.Json.Obj
           [ ("jobs", Trace.Json.List (List.map job_json (Jobs.list t.jobs_tbl)))
           ]) )
  | "POST", [ "jobs" ] -> handle_post_job t req oc
  | "GET", [ "jobs"; id ] ->
    (match Jobs.find t.jobs_tbl id with
     | Some j -> (200, Http.respond_json ~code:200 oc (job_json j))
     | None -> (404, Http.error_json ~code:404 oc ("no such job: " ^ id)))
  | "GET", [ "jobs"; id; "manifest" ] -> handle_manifest t id oc
  | "GET", [ "trace" ] -> handle_trace t req oc
  | "POST", [ "shutdown" ] ->
    let n =
      Http.respond_json ~code:200 oc
        (Trace.Json.Obj [ ("status", Trace.Json.Str "shutting down") ])
    in
    ignore (Thread.create shutdown t);
    (200, n)
  | _, _ -> (404, Http.error_json ~code:404 oc "not found")

let access_log t ~req ~code ~bytes ~duration_us =
  match t.cfg.cfg_access_log with
  | None -> ()
  | Some ch ->
    let line =
      Trace.Json.to_string
        (Trace.Json.Obj
           [ ("ts", Trace.Json.Float (Unix.gettimeofday ()));
             ("method", Trace.Json.Str req.Http.rq_method);
             ("path", Trace.Json.Str req.Http.rq_path);
             ("endpoint", Trace.Json.Str (endpoint_of req));
             ("code", Trace.Json.Int code);
             ("bytes", Trace.Json.Int bytes);
             ("duration_us", Trace.Json.Int duration_us) ])
    in
    locked t (fun () ->
        output_string ch line;
        output_char ch '\n';
        flush ch)

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (match Http.read_request ic with
   | None -> ()
   | Some req ->
     Metrics.request_begin t.mtr;
     let t0 = Unix.gettimeofday () in
     let code, bytes =
       try
         Obs.Tracer.with_span ~cat:"http"
           ~attrs:
             [ ("method", Obs.Span.Str req.Http.rq_method);
               ("path", Obs.Span.Str req.Http.rq_path) ]
           ("http:" ^ req.Http.rq_path)
           (fun () -> handle t req oc)
       with
       | Sys_error _ | Unix.Unix_error _ ->
         (499, 0)  (* client went away mid-response *)
       | e ->
         (try ignore (Http.error_json ~code:500 oc (Printexc.to_string e))
          with _ -> ());
         (500, 0)
     in
     let duration_us =
       int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)
     in
     Metrics.request_end t.mtr ~endpoint:(endpoint_of req) ~code ~duration_us;
     access_log t ~req ~code ~bytes ~duration_us
   | exception Http.Bad_request msg ->
     (try ignore (Http.error_json ~code:400 oc msg) with _ -> ())
   | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) -> ());
  (try close_out oc with _ -> ());
  (try close_in ic with _ -> ())

let run t =
  locked t (fun () -> t.accepting <- true);
  let rec loop () =
    if locked t (fun () -> t.stopping) then ()
    else
      match Unix.accept t.listen_fd with
      | fd, _addr ->
        if locked t (fun () -> t.stopping) then
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (handle_connection t) fd);
        loop ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ ->
        (* shutdown(2) from Daemon.shutdown lands here as EINVAL *)
        ()
  in
  loop ();
  locked t (fun () -> t.accepting <- false);
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())

let start t = Thread.create run t
