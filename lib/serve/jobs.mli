(** The daemon's job table and scheduler.

    [POST /jobs] enqueues a parsed campaign; one scheduler thread
    drains the queue in submission order and executes each campaign on
    the shared {!Par.Pool} through {!Runner.run} — jobs are serialized
    with respect to each other (each one already fans out across the
    pool's domains), which keeps pool usage identical to the CLI and
    results deterministic. All table access is mutex-guarded; request
    threads only ever read copies. *)

type state =
  | Queued
  | Running
  | Done
  | Failed of string

val state_to_string : state -> string

type job = {
  jb_id : string;  (** ["job-1"], dense and monotonic *)
  jb_spec : Par.Campaign.t;
  jb_submitted_s : float;
  jb_state : state;
  jb_started_s : float option;
  jb_finished_s : float option;
  jb_wall_time_s : float option;  (** measured execution time *)
  jb_manifest : Telemetry.Manifest.t option;  (** [Done] jobs only *)
  jb_tally : Workloads.Campaign.tally option;
  jb_stats : Gpu.Stats.t option;  (** merged device stats, [Done] only *)
}

type t

val create :
  pool:Par.Pool.t ->
  ?activity:(Trace.Record.t list -> unit) ->
  ?on_done:(job -> unit) ->
  unit -> t
(** [activity] receives each served [Run] job's activity records;
    [on_done] fires (on the scheduler thread) when a job reaches
    [Done] or [Failed] — the metrics layer hooks both. *)

val start : t -> unit
(** Spawn the scheduler thread. Idempotent. *)

val submit : t -> Par.Campaign.t -> job
(** Enqueue; returns the job snapshot in state [Queued].
    @raise Invalid_argument after {!stop}. *)

val find : t -> string -> job option
(** Snapshot of one job by id. *)

val list : t -> job list
(** Snapshots, oldest first. *)

val drained : t -> bool
(** No job queued or running — the [/readyz] predicate. *)

val counts : t -> int * int * int * int
(** (queued, running, done, failed). *)

val stop : t -> unit
(** Refuse new submissions, let the running job (if any) finish, join
    the scheduler thread. Queued jobs that never ran are marked
    [Failed "server shutdown"]. Idempotent. *)
