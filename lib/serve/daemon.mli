(** The profiling daemon: a dependency-free HTTP/1.1 server (blocking
    accept loop, one thread per connection) exposing the whole
    observability stack live:

    - [GET /metrics] — Prometheus exposition of the serve registry
      (requests, latency, in-flight, jobs), the pool's [sassi_pool_*]
      series, the compile cache's [sassi_cache_*] series,
      [sassi_build_info] and [sassi_uptime_seconds]. Point-in-time
      consistent: exporters render a {!Telemetry.Registry.snapshot}.
    - [GET /healthz] — liveness (200 as long as the process serves).
    - [GET /readyz] — readiness: 200 only when no job is queued or
      running, 503 otherwise.
    - [POST /jobs] — submit a sassi-campaign/1 JSON document; returns
      202 with the job id.
    - [GET /jobs], [GET /jobs/:id] — job table / one job's status,
      tally, and timings.
    - [GET /jobs/:id/manifest] — the finished job's canonical
      manifest, byte-identical to the file `sassi_run campaign
      --manifest` writes for the same campaign.
    - [GET /trace] — resident activity records as NDJSON (same record
      schema trace files use, so the output pipes straight into
      `sassi_run trace-summary`); [?follow=1] keeps the connection
      open and streams new records as served jobs emit them.
    - [POST /shutdown] — graceful stop.

    Every request runs under an [Obs] span (category ["http"]) and
    emits one structured JSON access-log line. *)

type config = {
  cfg_host : string;  (** bind address, default ["127.0.0.1"] *)
  cfg_port : int;  (** 0 picks an ephemeral port; see {!port} *)
  cfg_pool_jobs : int;  (** pool width for job execution *)
  cfg_feed_capacity : int;  (** activity feed ring size *)
  cfg_cache : bool;  (** enable the compile cache *)
  cfg_cache_bytes : int;  (** compile cache budget *)
  cfg_access_log : out_channel option;  (** [None] silences the log *)
}

val default_config : config

type t

val create : config -> t
(** Bind and listen (so {!port} is final), build the pool, job table,
    feed, and metrics. Ignores [SIGPIPE] process-wide — a follower
    disconnecting must not kill the daemon. *)

val port : t -> int
(** The actual bound port (resolves [cfg_port = 0]). *)

val jobs : t -> Jobs.t

val metrics : t -> Metrics.t

val run : t -> unit
(** Serve until {!shutdown}; blocks the calling thread. *)

val start : t -> Thread.t
(** {!run} on a fresh thread — the in-process harness tests use this. *)

val shutdown : t -> unit
(** Stop accepting, finish the running job, fail queued ones, close
    the feed (ending follower streams), drain the pool. Idempotent;
    callable from a handler thread or another thread. *)
