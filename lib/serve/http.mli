(** Minimal HTTP/1.1 message layer for the profiling daemon: enough to
    parse one request off a blocking socket and write one response —
    no external dependencies, no keep-alive (every exchange is
    [Connection: close], which Prometheus scrapers and [curl] both
    handle). Streaming responses write headers first, then body
    chunks until the handler closes the connection. *)

type request = {
  rq_method : string;  (** uppercase, e.g. ["GET"] *)
  rq_path : string;  (** decoded path without the query string *)
  rq_query : (string * string) list;  (** query parameters, in order *)
  rq_headers : (string * string) list;  (** names lowercased *)
  rq_body : string;
}

exception Bad_request of string
(** Raised by {!read_request} on malformed input (bad request line,
    oversized message, invalid [Content-Length]). *)

val max_body_bytes : int
(** Bodies past this (8 MiB) raise {!Bad_request}. *)

val read_request : in_channel -> request option
(** Parse one request. [None] when the peer closed before sending a
    request line. @raise Bad_request on malformed input. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query : request -> string -> string option

val reason : int -> string
(** Reason phrase for a status code (["OK"], ["Not Found"], ...). *)

val respond :
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  code:int -> out_channel -> string -> int
(** Write a complete response (status line, headers with
    [Content-Length], body) and flush. Returns the body length, for
    the access log. *)

val respond_json : code:int -> out_channel -> Trace.Json.t -> int
(** {!respond} with [application/json] and a trailing newline, so a
    fetched job manifest is byte-identical to the file the CLI
    writes. *)

val error_json : code:int -> out_channel -> string -> int
(** [{"error": msg}] with the given status. *)

val start_stream : ?content_type:string -> code:int -> out_channel -> unit
(** Write status line and headers for a body-until-close response
    (no [Content-Length]); the caller then writes body chunks and
    flushes as it goes. *)
