(** The daemon's own telemetry: one {!Telemetry.Registry} carrying the
    [sassi_serve_*] request/latency/in-flight series, job lifecycle
    counters, [sassi_job_<stat>_total] accumulators over every served
    job's merged device stats, plus [sassi_build_info] and
    [sassi_uptime_seconds]. Pool and compile-cache series attach to the
    same registry so [GET /metrics] is a single scrape of everything.

    All mutation goes through the update functions below, which are
    mutex-guarded — request threads and the job scheduler hit them
    concurrently. Exposition goes through {!Telemetry.Export}, which
    snapshots, so scrapes are point-in-time consistent. *)

type t

val create : unit -> t
(** Registers the serve series. [sassi_serve_requests_total] is
    pre-registered per endpoint label for {!endpoints};
    [sassi_serve_responses_total] per status class. *)

val registry : t -> Telemetry.Registry.t

val endpoints : string list
(** The fixed label set for per-endpoint request counters; requests to
    anything else count under ["other"]. *)

val attach_pool : t -> Par.Pool.t -> unit
(** Expose the pool's [sassi_pool_*] series on this registry. *)

val attach_cache : t -> unit
(** Expose the compile cache's [sassi_cache_*] series. *)

val set_jobs_source : t -> (unit -> int * int * int * int) -> unit
(** Wire the (queued, running, done, failed) gauge source — the
    daemon points this at {!Jobs.counts}. *)

val request_begin : t -> unit
(** Bump the in-flight gauge. Pair with {!request_end}. *)

val request_end : t -> endpoint:string -> code:int -> duration_us:int -> unit
(** Count the request under its endpoint and status class and observe
    its latency; drops the in-flight gauge. *)

val job_submitted : t -> unit

val job_finished : t -> ok:bool -> duration_us:int -> unit

val observe_job_stats : t -> Gpu.Stats.t -> unit
(** Fold a completed job's merged device stats into the
    [sassi_job_<stat>_total] accumulators. *)
