type tally = {
  masked : int;
  crashes : int;
  hangs : int;
  failure_symptoms : int;
  sdc_stdout : int;
  sdc_output : int;
  total : int;
}

let tally_of_outcomes outcomes =
  let t =
    ref { masked = 0; crashes = 0; hangs = 0; failure_symptoms = 0;
          sdc_stdout = 0; sdc_output = 0; total = 0 }
  in
  List.iter
    (fun o ->
       let c = !t in
       t :=
         (match o with
          | Handlers.Error_inject.Masked -> { c with masked = c.masked + 1 }
          | Handlers.Error_inject.Crash _ -> { c with crashes = c.crashes + 1 }
          | Handlers.Error_inject.Hang -> { c with hangs = c.hangs + 1 }
          | Handlers.Error_inject.Failure_symptom _ ->
            { c with failure_symptoms = c.failure_symptoms + 1 }
          | Handlers.Error_inject.Sdc_stdout ->
            { c with sdc_stdout = c.sdc_stdout + 1 }
          | Handlers.Error_inject.Sdc_output ->
            { c with sdc_output = c.sdc_output + 1 });
       t := { !t with total = !t.total + 1 })
    outcomes;
  !t

type detail = {
  d_tally : tally;
  d_outcomes : Handlers.Error_inject.outcome list;
  d_stats : Gpu.Stats.t;
}

(* The three-step flow. Steps 0-2 (golden run, profiling run, site
   selection) are inherently sequential and run on the caller's
   domain; step 3 is one independent device run per target, fanned out
   over [pool] when given. Each injection task builds its own device
   and handler state, so tasks share nothing; outcomes and stats are
   joined in target order, making the parallel result bit-identical to
   the sequential one. *)
let run_detailed ?(cfg = Gpu.Config.default) ?(seed = 2025) ?pool ~injections
    w ~variant =
  (* Step 0: golden reference. *)
  let golden =
    let dev = Gpu.Device.create ~cfg () in
    let r = w.Workload.run dev ~variant in
    (r.Workload.output_digest, r.Workload.stdout)
  in
  (* Step 1: profiling run (Section 8.1 step 1). *)
  let profile = Handlers.Error_inject.Profile.create () in
  let devp = Gpu.Device.create ~cfg () in
  let _ =
    Sassi.Runtime.with_instrumentation devp
      (Handlers.Error_inject.Profile.pairs profile)
      (fun _ -> w.Workload.run devp ~variant)
  in
  (* Step 2: statistical site selection on the host. *)
  let targets =
    Handlers.Error_inject.Profile.pick_targets profile ~seed ~n:injections
  in
  (* Step 3: one injection per run, classify the outcome. *)
  let run_one target () =
    let injected = ref false in
    let stats = ref (Gpu.Stats.create ()) in
    let outcome =
      Handlers.Error_inject.classify ~reference:golden (fun () ->
          let dev = Gpu.Device.create ~cfg () in
          let r =
            Sassi.Runtime.with_instrumentation dev
              (Handlers.Error_inject.injection_pairs target ~injected)
              (fun _ -> w.Workload.run dev ~variant)
          in
          stats := r.Workload.stats;
          (r.Workload.output_digest, r.Workload.stdout))
    in
    (outcome, !stats)
  in
  let per_task =
    match pool with
    | None -> Array.of_list (List.map (fun t -> run_one t ()) targets)
    | Some pool ->
      Par.Pool.map_ordered pool (fun t -> run_one t ()) (Array.of_list targets)
  in
  let outcomes = List.map fst (Array.to_list per_task) in
  { d_tally = tally_of_outcomes outcomes;
    d_outcomes = outcomes;
    d_stats = Par.Reduce.stats (Array.map snd per_task) }

let run ?cfg ?seed ?pool ~injections w ~variant =
  (run_detailed ?cfg ?seed ?pool ~injections w ~variant).d_tally

let fractions t =
  let f x = if t.total = 0 then 0.0 else float_of_int x /. float_of_int t.total in
  (f t.masked, f t.crashes, f t.hangs, f t.failure_symptoms,
   f t.sdc_stdout, f t.sdc_output)

let pp ppf t =
  let m, c, h, s, so, sf = fractions t in
  Format.fprintf ppf
    "masked %.1f%%  crash %.1f%%  hang %.1f%%  symptom %.1f%%  \
     sdc-stdout %.1f%%  sdc-output %.1f%%  (n=%d)"
    (100. *. m) (100. *. c) (100. *. h) (100. *. s) (100. *. so)
    (100. *. sf) t.total
