(** Error-injection campaign driver (paper Section 8's experimental
    flow): golden run, profiling run, statistical site selection, then
    one injection per run with outcome classification. *)

type tally = {
  masked : int;
  crashes : int;
  hangs : int;
  failure_symptoms : int;
  sdc_stdout : int;
  sdc_output : int;
  total : int;
}

type detail = {
  d_tally : tally;
  d_outcomes : Handlers.Error_inject.outcome list;  (** in target order *)
  d_stats : Gpu.Stats.t;  (** injection-run stats merged in target order *)
}

val run :
  ?cfg:Gpu.Config.t ->
  ?seed:int ->
  ?pool:Par.Pool.t ->
  injections:int ->
  Workload.t ->
  variant:string ->
  tally
(** Runs the full three-step flow on fresh devices. Each injection run
    re-executes the workload with exactly one bit flip. With [pool]
    the injection runs (step 3) fan out across domains; outcomes are
    joined in target order, so the tally is identical to a sequential
    run. *)

val run_detailed :
  ?cfg:Gpu.Config.t ->
  ?seed:int ->
  ?pool:Par.Pool.t ->
  injections:int ->
  Workload.t ->
  variant:string ->
  detail
(** [run] plus the per-target outcome list and the deterministic
    task-order merge of every injection run's device stats. *)

val tally_of_outcomes : Handlers.Error_inject.outcome list -> tally

val pp : Format.formatter -> tally -> unit

val fractions : tally -> float * float * float * float * float * float
(** (masked, crash, hang, symptom, sdc-stdout, sdc-output) as
    fractions of total. *)
