(** Deterministic xorshift RNG for dataset generation, independent of
    OCaml's stdlib so datasets are stable across runs and versions. *)

type t

val create : seed:int -> t

val int : t -> int -> int
(** Uniform in [0, bound). *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit

val geometric : t -> p:float -> int
(** Geometric variate (number of failures before success), capped. *)

val split : seed:int -> index:int -> t
(** Splittable child stream: a generator that depends only on
    [(seed, index)] — task [index] of a campaign seeded [seed] draws
    the same sequence under any scheduling order. *)
