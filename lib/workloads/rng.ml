type t = { mutable state : int }

let create ~seed = { state = (seed lxor 0x3E3779B97F4A7C15) lor 1 }

let next t =
  let x = t.state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  t.state <- x;
  x

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  next t mod bound

let float t bound = float_of_int (next t land 0xFFFFFF) /. 16777216.0 *. bound

let bool t = next t land 1 = 0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let geometric t ~p =
  let rec go n = if n >= 64 || float t 1.0 < p then n else go (n + 1) in
  go 0

(* Child stream [index] of a campaign seed: a pure function of
   (seed, index), so per-task generators are identical no matter how
   tasks are scheduled across domains. *)
let split ~seed ~index = create ~seed:(Par.Seed.split ~seed ~index)
