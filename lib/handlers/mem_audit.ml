type site = {
  s_kernel : string;
  s_pc : int;
  s_space : Sass.Opcode.space;
  s_store : bool;
  s_execs : int;
  s_min : int;
  s_max : int;
  s_total : int;
  s_partial : bool;
}

type record = {
  r_space : Sass.Opcode.space;
  r_store : bool;
  mutable r_execs : int;
  mutable r_min : int;
  mutable r_max : int;
  mutable r_total : int;
  mutable r_partial : bool;
}

type t = {
  line_bytes : int;
  tbl : (string * int, record) Hashtbl.t;
}

let create ~line_bytes = { line_bytes; tbl = Hashtbl.create 64 }

(* The machine's own counting rules, recomputed from lane addresses
   (see [Gpu.Memsys.shared_access] / [coalesce]). *)
let shared_degree addrs =
  let per_bank = Hashtbl.create 32 in
  List.iter
    (fun addr ->
       let word = addr / 4 in
       let bank = word mod 32 in
       let words =
         match Hashtbl.find_opt per_bank bank with None -> [] | Some ws -> ws
       in
       if not (List.mem word words) then
         Hashtbl.replace per_bank bank (word :: words))
    addrs;
  Hashtbl.fold (fun _ ws acc -> max acc (List.length ws)) per_bank 1

let global_lines ~line_bytes ~width addrs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun addr ->
       let first = addr / line_bytes
       and last = (addr + width - 1) / line_bytes in
       for l = first to last do
         Hashtbl.replace tbl l ()
       done)
    addrs;
  Hashtbl.length tbl

let handler t =
  Sassi.Handler.make ~name:"mem_audit" (fun ctx ->
      let open Sassi in
      let space = Params.Memory.space ctx in
      match space with
      | Sass.Opcode.Shared | Sass.Opcode.Global ->
        let lanes =
          List.filter
            (fun lane -> Params.Before.will_execute ctx ~lane)
            (Hctx.active_lanes ctx)
        in
        if lanes <> [] then begin
          let launch = ctx.Hctx.launch in
          let block_threads =
            launch.Gpu.State.l_block_x * launch.Gpu.State.l_block_y
          in
          let full =
            Gpu.State.initial_mask ~block_threads
              ~warp_id:ctx.Hctx.warp.Gpu.State.w_id
          in
          let workset =
            Intrinsics.ballot ctx (fun lane ->
                Params.Before.will_execute ctx ~lane)
          in
          let addrs =
            List.map (fun lane -> Params.Memory.address ctx ~lane) lanes
          in
          let cost =
            match space with
            | Sass.Opcode.Shared -> shared_degree addrs
            | _ ->
              global_lines ~line_bytes:t.line_bytes
                ~width:(Params.Memory.width ctx) addrs
          in
          let key =
            (ctx.Hctx.site.Select.s_kernel, ctx.Hctx.site.Select.s_old_pc)
          in
          let r =
            match Hashtbl.find_opt t.tbl key with
            | Some r -> r
            | None ->
              let r =
                { r_space = space; r_store = Params.Memory.is_store ctx;
                  r_execs = 0; r_min = max_int; r_max = 0; r_total = 0;
                  r_partial = false }
              in
              Hashtbl.add t.tbl key r;
              r
          in
          r.r_execs <- r.r_execs + 1;
          if cost < r.r_min then r.r_min <- cost;
          if cost > r.r_max then r.r_max <- cost;
          r.r_total <- r.r_total + cost;
          if workset <> full then r.r_partial <- true
        end
      | _ -> ())

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ],
     handler t) ]

let sites t =
  Hashtbl.fold
    (fun (kernel, pc) r acc ->
       { s_kernel = kernel; s_pc = pc; s_space = r.r_space;
         s_store = r.r_store; s_execs = r.r_execs;
         s_min = (if r.r_min = max_int then 0 else r.r_min);
         s_max = r.r_max; s_total = r.r_total; s_partial = r.r_partial }
       :: acc)
    t.tbl []
  |> List.sort (fun a b ->
      match String.compare a.s_kernel b.s_kernel with
      | 0 -> Int.compare a.s_pc b.s_pc
      | c -> c)

let clear t = Hashtbl.reset t.tbl
