type access = {
  a_pc : int;
  a_write : bool;
  a_width : int;
  a_addrs : int array;
}

(* Storage rides on the activity tracer's ring buffer; [Drop_newest]
   keeps the historical contract — beyond capacity, new accesses are
   counted but not stored. *)
type t = access Trace.Ring.t

let create ?(capacity = 1_000_000) () =
  Trace.Ring.create ~policy:Trace.Ring.Drop_newest ~capacity ()

let handler t =
  Sassi.Handler.make ~name:"mem_trace" (fun ctx ->
      let open Sassi in
      if Params.Memory.is_global ctx then begin
        let lanes =
          List.filter
            (fun lane -> Params.Before.will_execute ctx ~lane)
            (Hctx.active_lanes ctx)
        in
        if lanes <> [] then
          Trace.Ring.push t
            { a_pc = Params.Before.ins_addr ctx;
              a_write = Params.Memory.is_store ctx;
              a_width = Params.Memory.width ctx;
              a_addrs =
                Array.of_list
                  (List.map
                     (fun lane -> Params.Memory.address ctx ~lane)
                     lanes) }
      end)

let pairs t =
  [ (Sassi.Select.before [ Sassi.Select.Memory_ops ] [ Sassi.Select.Mem_info ],
     handler t) ]

let trace t = Trace.Ring.to_list t

let length t = Trace.Ring.length t

let dropped t = Trace.Ring.dropped t

let clear t = Trace.Ring.clear t
