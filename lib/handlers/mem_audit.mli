(** Per-site memory audit: the dynamic ground truth the static
    predictors ({!Analysis.Mempredict}) are validated against.

    A SASSI before-handler on memory ops that, for every warp access,
    recomputes the simulator's own cost from the lane addresses —
    bank-conflict degree for shared accesses, coalesced line count for
    global accesses — and aggregates it per static site
    [(kernel, original PC)]. It also records whether the site ever
    fired with a partial warp (divergence or guard), which is what
    disqualifies a site from exact static prediction.

    Summing [degree - 1] over shared accesses must reproduce the
    machine's [shared_conflicts] counter, and summing line counts over
    global loads/stores must reproduce [gld_transactions] /
    [gst_transactions] — the audit is redundant with the simulator by
    construction, which is exactly what makes it a cross-check of the
    static predictions at per-site granularity. *)

type site = {
  s_kernel : string;
  s_pc : int;  (** PC in the uninstrumented kernel *)
  s_space : Sass.Opcode.space;
  s_store : bool;
  s_execs : int;  (** warp accesses observed *)
  s_min : int;  (** min per-access cost (degree or transactions) *)
  s_max : int;
  s_total : int;  (** summed cost over all accesses *)
  s_partial : bool;  (** some access ran with a partial warp mask *)
}

type t

val create : line_bytes:int -> t
(** [line_bytes] must match the device's coalescing granularity
    ([Gpu.Config.line_bytes]). *)

val pairs : t -> (Sassi.Select.spec * Sassi.Handler.t) list

val sites : t -> site list
(** Sorted by kernel then PC. *)

val clear : t -> unit
