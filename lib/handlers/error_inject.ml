type target = {
  t_kernel : string;
  t_invocation : int;
  t_thread : int;
  t_instr : int;
  t_dst_seed : int;
  t_bit_seed : int;
}

type outcome =
  | Masked
  | Crash of string
  | Hang
  | Failure_symptom of string
  | Sdc_stdout
  | Sdc_output

let outcome_to_string = function
  | Masked -> "masked"
  | Crash m -> "crash: " ^ m
  | Hang -> "hang"
  | Failure_symptom m -> "failure-symptom: " ^ m
  | Sdc_stdout -> "sdc-stdout"
  | Sdc_output -> "sdc-output"

let spec_classes = [ Sassi.Select.Reg_writes; Sassi.Select.Pred_writes ]

(* Count one charged profile update, standing in for the device-side
   counter atomic. *)
let charge_update ctx = Sassi.Hctx.charge ctx ~ops:1 ~cycles:30

module Profile = struct
  (* (kernel, invocation) -> thread -> dynamic instruction count *)
  type t = {
    tallies : (string * int, (int, int) Hashtbl.t) Hashtbl.t;
  }

  let create () = { tallies = Hashtbl.create 16 }

  let handler t =
    Sassi.Handler.make ~name:"ei_profile" (fun ctx ->
        let open Sassi in
        let launch = ctx.Hctx.launch in
        let key =
          ( launch.Gpu.State.l_kernel.Sass.Program.name,
            launch.Gpu.State.l_invocation )
        in
        let per_thread =
          match Hashtbl.find_opt t.tallies key with
          | Some h -> h
          | None ->
            let h = Hashtbl.create 1024 in
            Hashtbl.replace t.tallies key h;
            h
        in
        charge_update ctx;
        List.iter
          (fun lane ->
             if Params.Before.will_execute ctx ~lane then begin
               let tid = Hctx.lane_global_tid ctx ~lane in
               let c =
                 match Hashtbl.find_opt per_thread tid with
                 | Some c -> c
                 | None -> 0
               in
               Hashtbl.replace per_thread tid (c + 1)
             end)
          (Hctx.active_lanes ctx))

  let pairs t =
    [ (Sassi.Select.after spec_classes [ Sassi.Select.Reg_info ], handler t) ]

  let total_dynamic_instrs t =
    Hashtbl.fold
      (fun _ per_thread acc ->
         Hashtbl.fold (fun _ c acc -> acc + c) per_thread acc)
      t.tallies 0

  (* Target seeds are split from (campaign seed, target index) rather
     than drawn sequentially, so target [i] flips the same destination
     and bit no matter how many targets precede it or which domain
     later executes its injection run. The site pick [k] stays a
     sequential draw: selection happens on the host before any task is
     scheduled, so it is deterministic either way. *)
  let pick_targets t ~seed ~n =
    let rng = Random.State.make [| seed |] in
    let total = total_dynamic_instrs t in
    if total = 0 then []
    else
      let pick index =
        let k = Random.State.int rng total in
        let split = Par.Seed.split ~seed ~index in
        (* Walk the tallies to the k-th dynamic instruction. *)
        let result = ref None in
        let remaining = ref k in
        (try
           Hashtbl.iter
             (fun (kernel, invocation) per_thread ->
                Hashtbl.iter
                  (fun tid c ->
                     if !remaining < c then begin
                       result :=
                         Some
                           { t_kernel = kernel;
                             t_invocation = invocation;
                             t_thread = tid;
                             t_instr = !remaining;
                             t_dst_seed = split mod 1000;
                             t_bit_seed = split / 1000 mod 1000 };
                       raise Exit
                     end
                     else remaining := !remaining - c)
                  per_thread)
             t.tallies
         with Exit -> ());
        match !result with
        | Some target -> target
        | None -> assert false
      in
      (* Explicit recursion: the draw order of [k] must follow the
         target index (List.init's application order is unspecified). *)
      let rec go i = if i >= n then [] else pick i :: go (i + 1) in
      go 0
end

let injection_handler target ~injected =
  (* Per-run dynamic-instruction counter for the target thread. *)
  let count = ref 0 in
  Sassi.Handler.make ~name:"ei_inject" (fun ctx ->
      let open Sassi in
      let launch = ctx.Hctx.launch in
      (* Every call pays the handler's thread-id check; warps that
         cannot contain the target (global thread ids of a warp are
         contiguous) skip the per-lane walk in O(1). *)
      Hctx.charge ctx ~ops:1 ~cycles:4;
      let warp_base = Hctx.lane_global_tid ctx ~lane:0 in
      if
        (not !injected)
        && target.t_thread >= warp_base
        && target.t_thread < warp_base + 32
        && launch.Gpu.State.l_kernel.Sass.Program.name = target.t_kernel
        && launch.Gpu.State.l_invocation = target.t_invocation
      then begin
        charge_update ctx;
        List.iter
          (fun lane ->
             if
               Hctx.lane_global_tid ctx ~lane = target.t_thread
               && Params.Before.will_execute ctx ~lane
             then begin
               if !count = target.t_instr && not !injected then begin
                 let num_gpr = Params.Registers.num_gpr_dsts ctx in
                 let num_pred = Params.Registers.num_pred_dsts ctx in
                 let total = num_gpr + num_pred in
                 if total > 0 then begin
                   let pick = target.t_dst_seed mod total in
                   let bit, kind =
                     if pick < num_gpr then begin
                       let old = Params.Registers.value ctx ~lane pick in
                       let bit = target.t_bit_seed mod 32 in
                       Params.Registers.set_value ctx ~lane pick
                         (old lxor (1 lsl bit));
                       (bit, "register")
                     end
                     else begin
                       let old = Params.Registers.pred_value ctx ~lane in
                       Params.Registers.set_pred_value ctx ~lane (not old);
                       (-1, "predicate")
                     end
                   in
                   (match ctx.Hctx.device.Gpu.State.d_tracer with
                    | Some c
                      when Trace.Collector.wants c Trace.Record.Fault ->
                      let sm = ctx.Hctx.sm in
                      Trace.Collector.emit c
                        (Trace.Record.make
                           ~cycle:
                             (ctx.Hctx.device.Gpu.State.d_trace_base
                              + sm.Gpu.State.sm_cycle)
                           ~sm:sm.Gpu.State.sm_id
                           ~warp:(Gpu.State.warp_uid ctx.Hctx.warp)
                           (Trace.Record.Fault_inject
                              { thread = target.t_thread;
                                bit;
                                target = kind }))
                    | _ -> ());
                   injected := true
                 end
               end;
               incr count
             end)
          (Hctx.active_lanes ctx)
      end)

let injection_pairs target ~injected =
  [ (Sassi.Select.after spec_classes [ Sassi.Select.Reg_info ],
     injection_handler target ~injected) ]

let classify ~reference run =
  let ref_output, ref_stdout = reference in
  match run () with
  | output, stdout ->
    if output <> ref_output then Sdc_output
    else if stdout <> ref_stdout then Sdc_stdout
    else Masked
  | exception Gpu.Trap.Hang _ -> Hang
  | exception (Gpu.Trap.Memory_fault _ as e) ->
    Crash (Option.value ~default:"memory fault" (Gpu.Trap.describe e))
  | exception Gpu.Trap.Device_assert m -> Failure_symptom m
  | exception Invalid_argument m -> Failure_symptom m
