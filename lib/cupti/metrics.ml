let names () = Prof.Metrics.names ()

let query () =
  List.map
    (fun m ->
       (Prof.Metrics.name m, Prof.Metrics.unit_ m, Prof.Metrics.description m))
    Prof.Metrics.registry

let compute ?sampling ~cfg stats name =
  match Prof.Metrics.find name with
  | None -> None
  | Some m -> Prof.Metrics.compute { Prof.Metrics.stats; cfg; sampling } m
