(** CUPTI-style metric API ([cuptiMetricGetValue] analogue): query
    the registry of derived metrics and compute them from launch
    statistics. *)

val names : unit -> string list

val query : unit -> (string * string * string) list
(** [(name, unit, description)] for every known metric, in
    presentation order — the [--query-metrics] listing. *)

val compute :
  ?sampling:Prof.Pc_sampling.t ->
  cfg:Gpu.Config.t ->
  Gpu.Stats.t ->
  string ->
  Prof.Metrics.value option
(** [None] for unknown names or metrics undefined on this run. *)
