(** CUPTI-style profiling APIs over the simulated device: activity
    tracing, callbacks, event counters, metrics, PC sampling, and
    telemetry. This interface module exists so the metrics API can be
    exposed under its natural name, [Cupti.Telemetry], without the
    implementation unit shadowing the [telemetry] library it builds
    on. *)

module Activity = Activity
module Callback = Callback
module Counters = Counters
module Metrics = Metrics
module Pc_sampling = Pc_sampling
module Telemetry = Tele
