type kind =
  | Kernel
  | Block
  | Warp
  | Mem
  | Cache
  | Handler
  | Fault

let all_kinds = [ Kernel; Block; Warp; Mem; Cache; Handler; Fault ]

let category = function
  | Kernel -> Trace.Record.Kernel
  | Block -> Trace.Record.Block
  | Warp -> Trace.Record.Warp
  | Mem -> Trace.Record.Mem
  | Cache -> Trace.Record.Cache
  | Handler -> Trace.Record.Handler
  | Fault -> Trace.Record.Fault

let kind_of_string s =
  match Trace.Record.category_of_string s with
  | Some Trace.Record.Kernel -> Some Kernel
  | Some Trace.Record.Block -> Some Block
  | Some Trace.Record.Warp -> Some Warp
  | Some Trace.Record.Mem -> Some Mem
  | Some Trace.Record.Cache -> Some Cache
  | Some Trace.Record.Handler -> Some Handler
  | Some Trace.Record.Fault -> Some Fault
  | None -> None

type overflow =
  | Drop_oldest
  | Drop_newest
  | Deliver of (Trace.Record.t array -> unit)

let enable ?(capacity = 262144) ?(overflow = Drop_oldest) device kinds =
  let policy =
    match overflow with
    | Drop_oldest -> Trace.Ring.Drop_oldest
    | Drop_newest -> Trace.Ring.Drop_newest
    | Deliver f -> Trace.Ring.Flush_callback f
  in
  let categories = List.map category kinds in
  let c = Trace.Collector.create ~capacity ~policy ~categories () in
  Gpu.Device.set_tracer device (Some c)

let enable_all ?capacity ?overflow device =
  enable ?capacity ?overflow device all_kinds

let disable device = Gpu.Device.set_tracer device None

let collector device = Gpu.Device.tracer device

let enabled device =
  match collector device with
  | Some _ -> true
  | None -> false

let flush device =
  match collector device with
  | Some c -> Trace.Collector.flush c
  | None -> []

let records device =
  match collector device with
  | Some c -> Trace.Collector.records c
  | None -> []

let dropped device =
  match collector device with
  | Some c -> Trace.Collector.dropped c
  | None -> 0

let delivered device =
  match collector device with
  | Some c -> Trace.Collector.flushed c
  | None -> 0
