(** CUPTI-style metrics API (exposed as [Cupti.Telemetry]): enable
    histogram and time-series collection on a device, run kernels,
    export through {!Telemetry.Export} or fold into a run manifest.

    Enabling installs a {!Gpu.State.telemetry} sink observed from the
    memory system, branch unit, barrier release, scheduler, and SASSI
    handler trap. The sink only observes: {!Gpu.Stats} stay
    bit-identical with telemetry on or off, and a device without
    telemetry pays one branch per observation site. *)

type t

val default_interval : int
(** Cycles between time-series samples (1000). *)

val series_columns : string array
(** Gauge names of the series rows, in sample order: occupancy,
    issue rate, L1/L2 hit rate, DRAM queue depth. *)

val enable : ?interval:int -> Gpu.Device.t -> t
(** Install a fresh sink and its registry on the device.
    @raise Invalid_argument if telemetry is already enabled or
    [interval <= 0]. *)

val disable : Gpu.Device.t -> unit
(** Stop collecting; data accumulated so far stays readable on [t]. *)

val enabled : Gpu.Device.t -> bool

val registry : t -> Telemetry.Registry.t
(** All instruments, for the exporters. *)

val series : t -> Telemetry.Series.t

val interval : t -> int

val handler_sites : t -> (int * int) list
(** (site id, invocation count), sorted by site id. *)

val counters : t -> (string * int) list
(** Registered counters read now, in registration order. *)

val histograms : t -> (string * Telemetry.Hist.summary) list
(** Registered histograms summarized now, in registration order. *)
