(** The Activity API — CUPTI's third pillar next to {!Callback} and
    {!Counters}: asynchronous, buffered activity records collected
    while kernels run, delivered to the host in batches.

    Mirrors the shape of real CUPTI: [enable] a set of activity kinds
    (cupti's [cuptiActivityEnable]), optionally register a
    buffer-completed callback ([cuptiActivityRegisterCallbacks]),
    then [flush] ([cuptiActivityFlushAll]) to drain resident records.
    Record storage and analysis live in the {!Trace} library. *)

type kind =
  | Kernel  (** CUPTI_ACTIVITY_KIND_KERNEL *)
  | Block  (** thread-block dispatch *)
  | Warp  (** warp issue / stall / barrier *)
  | Mem  (** warp-level memory transactions *)
  | Cache  (** L1/L2 probes *)
  | Handler  (** SASSI handler invocations *)
  | Fault  (** fault-injection events *)

val all_kinds : kind list

val kind_of_string : string -> kind option

val category : kind -> Trace.Record.category

type overflow =
  | Drop_oldest
  | Drop_newest
  | Deliver of (Trace.Record.t array -> unit)
      (** buffer-completed callback: on overflow the full buffer is
          delivered (oldest first) and emptied *)

val enable :
  ?capacity:int -> ?overflow:overflow -> Gpu.Device.t -> kind list -> unit
(** Install a fresh collector for the given kinds (replacing any
    previous one). Default [capacity] 262144 records, default
    [overflow] [Drop_oldest]. *)

val enable_all : ?capacity:int -> ?overflow:overflow -> Gpu.Device.t -> unit

val disable : Gpu.Device.t -> unit
(** Remove the collector; resident records are discarded, emission
    sites return to their zero-cost path. *)

val enabled : Gpu.Device.t -> bool

val flush : Gpu.Device.t -> Trace.Record.t list
(** Drain and return resident records, oldest first ([] when
    disabled). Drop counters survive the flush. *)

val records : Gpu.Device.t -> Trace.Record.t list
(** Peek without draining. *)

val dropped : Gpu.Device.t -> int
(** Records lost to the overflow policy since [enable]. *)

val delivered : Gpu.Device.t -> int
(** Records handed to the [Deliver] callback since [enable]. *)

val collector : Gpu.Device.t -> Trace.Collector.t option
