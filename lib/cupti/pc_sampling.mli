(** CUPTI-style PC-sampling activity API
    ([cuptiActivityConfigurePCSampling] analogue): enable sampling on
    a device, run kernels, read back hotspot data. A thin veneer over
    {!Prof.Pc_sampling}. *)

type t = Prof.Pc_sampling.t

val default_period : int

val enable : ?period:int -> Gpu.Device.t -> t
(** Install a fresh sampler on the device and return it.
    @raise Invalid_argument if sampling is already enabled or
    [period <= 0]. *)

val disable : Gpu.Device.t -> unit
(** Stop sampling; data accumulated so far stays readable on [t]. *)

val enabled : Gpu.Device.t -> bool

val report :
  ?top:int ->
  ?metrics:Prof.Metrics.t list ->
  stats:Gpu.Stats.t ->
  Gpu.Device.t ->
  t ->
  Prof.Report.t
