type t = Prof.Pc_sampling.t

let default_period = Prof.Pc_sampling.default_period

let enable ?period device =
  let sampling = Prof.Pc_sampling.create ?period () in
  Prof.Pc_sampling.attach sampling device;
  sampling

let disable device = Prof.Pc_sampling.detach device

let enabled device = Gpu.Device.sampler device <> None

let report ?top ?metrics ~stats device sampling =
  Prof.Report.build ?top ?metrics
    ~cfg:(Gpu.Device.config device)
    ~stats sampling
