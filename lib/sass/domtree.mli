(** Dominator and post-dominator analysis.

    The immediate post-dominator of a conditional branch's block is the
    earliest program point through which every path from the branch to
    kernel exit must pass — exactly where NVIDIA's divergence stack
    reconverges the warp (paper, Section 5). Forward dominators are the
    dual and let analyses distinguish "barrier before the branch on
    every path" (a loop body) from "barrier on one divergent arm". *)

type t

val post_dominators : Cfg.t -> t
(** Computes immediate post-dominators with the iterative
    Cooper-Harvey-Kennedy algorithm over the reversed CFG, using a
    virtual exit node that all exit blocks reach. *)

val dominators : Cfg.t -> t
(** Immediate dominators of the forward CFG, rooted at the entry
    block. Blocks unreachable from the entry have no dominator
    ([idom] is [None] and [dominates] is false for them, except
    reflexively). *)

val ipdom : t -> int -> int option
(** [ipdom t b] is the immediate post-dominator block of block [b], or
    [None] if only the virtual exit post-dominates [b]. On a forward
    tree from {!dominators}, the immediate dominator ([None] for the
    entry block and for unreachable blocks). *)

val idom : t -> int -> int option
(** Alias of {!ipdom} under the forward-dominator reading. *)

val post_dominates : t -> int -> int -> bool
(** [post_dominates t a b] is true iff block [a] post-dominates
    block [b] (reflexive). *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] on a tree from {!dominators}: true iff [a]
    dominates [b] (reflexive; false when [b] is unreachable and
    [a <> b]). *)

val reconvergence_pc : Cfg.t -> t -> int -> int option
(** [reconvergence_pc cfg t pc] is the reconvergence PC for a
    conditional branch at [pc]: the first instruction of the branch
    block's immediate post-dominator. *)
