(* Immediate (post-)dominators via Cooper-Harvey-Kennedy. One core
   runs over an abstract rooted graph; post-dominators instantiate it
   on the reversed CFG with a virtual exit node [n] that every exit
   block points to, forward dominators on the CFG itself rooted at the
   entry block. *)

type t = {
  idom : int array;  (* immediate (post-)dominator; [root] at the root *)
  root : int;
  virtual_root : bool;
      (* post-dominator trees root at a virtual exit node that is not a
         real block and must never appear in query answers; the forward
         tree roots at the real entry block. *)
}

(* [chk ~m ~root ~succs ~preds]: immediate dominators of the graph
   with nodes 0..m-1 given in terms of the root-to-leaves edge
   functions. Nodes unreachable from [root] keep idom = -1. *)
let chk ~m ~root ~succs ~preds =
  let visited = Array.make m false in
  let postorder = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (succs b);
      postorder := b :: !postorder
    end
  in
  dfs root;
  let rpo = Array.of_list !postorder in
  let rpo_number = Array.make m (-1) in
  Array.iteri (fun i b -> rpo_number.(b) <- i) rpo;
  let idom = Array.make m (-1) in
  idom.(root) <- root;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_number.(!f1) > rpo_number.(!f2) do f1 := idom.(!f1) done;
      while rpo_number.(!f2) > rpo_number.(!f1) do f2 := idom.(!f2) done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
         if b <> root && rpo_number.(b) >= 0 then begin
           let ps =
             List.filter (fun p -> idom.(p) <> -1 && rpo_number.(p) >= 0)
               (preds b)
           in
           match ps with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  idom

let post_dominators (cfg : Cfg.t) =
  let n = Array.length cfg.Cfg.blocks in
  let virtual_exit = n in
  (* Reversed graph rooted at the virtual exit: its successors are the
     original predecessor edges (plus virtual exit -> exit blocks),
     its predecessors the original successors. *)
  let succs b =
    if b = virtual_exit then Cfg.exit_blocks cfg
    else cfg.Cfg.blocks.(b).Cfg.preds
  in
  let preds b =
    if b = virtual_exit then []
    else
      let ss = cfg.Cfg.blocks.(b).Cfg.succs in
      if ss = [] then [ virtual_exit ] else ss
  in
  { idom = chk ~m:(n + 1) ~root:virtual_exit ~succs ~preds;
    root = virtual_exit;
    virtual_root = true }

let dominators (cfg : Cfg.t) =
  let entry = cfg.Cfg.block_of_pc.(0) in
  let succs b = cfg.Cfg.blocks.(b).Cfg.succs in
  let preds b = cfg.Cfg.blocks.(b).Cfg.preds in
  { idom = chk ~m:(Array.length cfg.Cfg.blocks) ~root:entry ~succs ~preds;
    root = entry;
    virtual_root = false }

let ipdom t b =
  let d = t.idom.(b) in
  if d = -1 || b = t.root || (t.virtual_root && d = t.root) then None
  else Some d

let idom = ipdom

let post_dominates t a b =
  let rec walk x =
    if x = a then true
    else if x = t.root || x = -1 then false
    else
      let next = t.idom.(x) in
      if next = x then x = a
      else walk next
  in
  walk b

let dominates = post_dominates

let reconvergence_pc cfg t pc =
  let b = cfg.Cfg.block_of_pc.(pc) in
  match ipdom t b with
  | None -> None
  | Some d -> Some cfg.Cfg.blocks.(d).Cfg.first
