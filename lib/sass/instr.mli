(** SASS-like machine instructions.

    Operand conventions (positional, by opcode family):
    - [LD]/[TLD]: [dsts = [d]] ([W64]: [[dlo; dhi]]),
      [srcs = [base; offset]]; effective address = base + offset.
    - [ST]: [srcs = [base; offset; v]] ([W64]: [[base; offset; vlo; vhi]]).
    - [ATOM]/[RED]: [srcs = [base; offset; operand]]
      ([A_cas]: [[base; offset; compare; swap]]); [ATOM] returns the old
      value in [dsts].
    - [ISETP]/[FSETP]: [pdsts = [p]], [srcs = [a; b]].
    - [SEL]: [srcs = [a; b; SPred p]].
    - [VOTE]: [dsts = [d]] (ballot) or [pdsts = [p]] (any/all),
      [srcs = [SPred source]].
    - [SHFL]: [srcs = [value; lane_or_delta]].
    - [P2R]: reads the whole predicate file; [R2P] writes it.
    - [BRA]/[CAL]: target program counter in [target].
    - [HCALL]: parameter registers [R4..R7] appear in [srcs] so that
      liveness sees them.

    The [reconv] field of a conditional [BRA] holds the reconvergence
    PC (immediate post-dominator), filled by
    {!Program.annotate_reconvergence}. *)

type src =
  | SReg of Reg.t
  | SImm of int  (** 32-bit immediate, stored in [0, 2{^32}) *)
  | SParam of int  (** byte offset into the kernel-parameter constant bank *)
  | SPred of Pred.t

type t = {
  op : Opcode.t;
  guard : Pred.guard;
  dsts : Reg.t list;
  pdsts : Pred.t list;
  srcs : src list;
  target : int option;  (** branch/call target PC *)
  reconv : int option;  (** reconvergence PC for conditional branches *)
}

val make :
  ?guard:Pred.guard ->
  ?dsts:Reg.t list ->
  ?pdsts:Pred.t list ->
  ?srcs:src list ->
  ?target:int ->
  ?reconv:int ->
  Opcode.t ->
  t

(** {1 Register def/use sets} *)

val defs : t -> Reg.t list
(** General-purpose registers written (excluding [RZ]). *)

val uses : t -> Reg.t list
(** General-purpose registers read, including the guard's source via
    none (guards are predicates) and address/value operands. *)

val pdefs : t -> Pred.t list
(** Predicates written (excluding [PT]). [R2P] defines [P0..P6]. *)

val puses : t -> Pred.t list
(** Predicates read, including the guard. [P2R] uses [P0..P6]. *)

val writes_gpr : t -> bool
(** True if the instruction architecturally writes at least one
    general-purpose register (the SASSI "register write" class). *)

val writes_pred : t -> bool

val reads_gpr : t -> bool

val is_cond_branch : t -> bool
(** A [BRA] under a non-[PT] guard. *)

(** Structured view of a memory operand, decoding the positional
    [base; offset; ...] convention shared by [LD]/[ST]/[ATOM]/[RED]. *)
type mem = {
  m_space : Opcode.space;
  m_width : Opcode.width;
  m_base : src;
  m_off : src;
  m_is_store : bool;  (** writes memory ([ST]/[ATOM]/[RED]) *)
  m_is_load : bool;  (** reads memory ([LD]/[TLD]/[ATOM]/[RED]) *)
  m_is_atomic : bool;
}

val mem_access : t -> mem option
(** [None] for non-memory instructions and [TLD] (texture addressing
    is an element index into a bound buffer, not a byte address). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
