type src =
  | SReg of Reg.t
  | SImm of int
  | SParam of int
  | SPred of Pred.t

type t = {
  op : Opcode.t;
  guard : Pred.guard;
  dsts : Reg.t list;
  pdsts : Pred.t list;
  srcs : src list;
  target : int option;
  reconv : int option;
}

let make ?(guard = Pred.always) ?(dsts = []) ?(pdsts = []) ?(srcs = [])
    ?target ?reconv op =
  { op; guard; dsts; pdsts; srcs; target; reconv }

let defs t = List.filter (fun r -> not (Reg.is_zero r)) t.dsts

let src_regs srcs =
  List.filter_map
    (function
      | SReg r when not (Reg.is_zero r) -> Some r
      | SReg _ | SImm _ | SParam _ | SPred _ -> None)
    srcs

let uses t = src_regs t.srcs

let all_preds = [ Pred.p 0; Pred.p 1; Pred.p 2; Pred.p 3;
                  Pred.p 4; Pred.p 5; Pred.p 6 ]

let pdefs t =
  let explicit = List.filter (fun p -> not (Pred.is_true p)) t.pdsts in
  match t.op with
  | Opcode.R2P -> all_preds
  | _ -> explicit

let puses t =
  let guard_pred =
    if Pred.is_true t.guard.pred then []
    else [ t.guard.pred ]
  in
  let srcs =
    List.filter_map
      (function
        | SPred p when not (Pred.is_true p) -> Some p
        | SPred _ | SReg _ | SImm _ | SParam _ -> None)
      t.srcs
  in
  let implicit =
    match t.op with
    | Opcode.P2R -> all_preds
    | _ -> []
  in
  guard_pred @ srcs @ implicit

let writes_gpr t = defs t <> []

let writes_pred t = pdefs t <> []

let reads_gpr t = uses t <> []

let is_cond_branch t =
  Opcode.is_branch t.op && not (Pred.is_always t.guard)

type mem = {
  m_space : Opcode.space;
  m_width : Opcode.width;
  m_base : src;
  m_off : src;
  m_is_store : bool;
  m_is_load : bool;
  m_is_atomic : bool;
}

let mem_access t =
  let two = function
    | base :: off :: _ -> Some (base, off)
    | _ -> None
  in
  let build ~store ~load ~atomic space width =
    match two t.srcs with
    | Some (m_base, m_off) ->
      Some
        { m_space = space; m_width = width; m_base; m_off;
          m_is_store = store; m_is_load = load; m_is_atomic = atomic }
    | None -> None
  in
  match t.op with
  | Opcode.LD (space, width) ->
    build ~store:false ~load:true ~atomic:false space width
  | Opcode.ST (space, width) ->
    build ~store:true ~load:false ~atomic:false space width
  | Opcode.ATOM (space, _, width) | Opcode.RED (space, _, width) ->
    build ~store:true ~load:true ~atomic:true space width
  | _ -> None

let pp_src ppf = function
  | SReg r -> Reg.pp ppf r
  | SImm i -> Format.fprintf ppf "0x%x" (i land 0xffffffff)
  | SParam off -> Format.fprintf ppf "c[0x0][0x%x]" off
  | SPred p -> Pred.pp ppf p

let pp ppf t =
  let open Format in
  Pred.pp_guard ppf t.guard;
  Opcode.pp ppf t.op;
  let operands =
    List.map (fun r -> `R r) t.dsts
    @ List.map (fun p -> `P p) t.pdsts
    @ List.map (fun s -> `S s) t.srcs
  in
  (match t.op with
   | Opcode.HCALL _ -> ()
   | _ ->
     List.iteri
       (fun i o ->
          pp_print_string ppf (if i = 0 then " " else ", ");
          match o with
          | `R r -> Reg.pp ppf r
          | `P p -> Pred.pp ppf p
          | `S s -> pp_src ppf s)
       operands);
  (match t.target with
   | Some pc -> fprintf ppf " -> 0x%x" (pc * 8)
   | None -> ());
  (match t.reconv with
   | Some pc -> fprintf ppf " (reconv 0x%x)" (pc * 8)
   | None -> ());
  pp_print_string ppf " ;"

let to_string t = Format.asprintf "%a" pp t
