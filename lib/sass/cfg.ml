type block = {
  id : int;
  first : int;
  last : int;
  succs : int list;
  preds : int list;
}

type t = {
  blocks : block array;
  block_of_pc : int array;
  reachable : bool array;
}

let instr_successors instrs pc =
  let n = Array.length instrs in
  let i = instrs.(pc) in
  let fallthrough = if pc + 1 < n then [ pc + 1 ] else [] in
  match i.Instr.op with
  | Opcode.EXIT | Opcode.RET ->
    (* A guarded EXIT retires only the lanes whose guard holds; the
       warp falls through for the rest. *)
    if Pred.is_always i.Instr.guard then [] else fallthrough
  | Opcode.BRA ->
    let target =
      match i.Instr.target with
      | Some t -> t
      | None -> invalid_arg "Cfg: BRA without resolved target"
    in
    if Instr.is_cond_branch i then target :: fallthrough else [ target ]
  | Opcode.IADD | Opcode.ISUB | Opcode.IMUL | Opcode.IMAD | Opcode.IDIV _
  | Opcode.IMOD _ | Opcode.IMNMX _ | Opcode.SHL | Opcode.SHR _
  | Opcode.LOP _ | Opcode.BREV | Opcode.POPC | Opcode.FLO | Opcode.ISETP _
  | Opcode.FADD | Opcode.FSUB | Opcode.FMUL | Opcode.FFMA | Opcode.FMNMX _
  | Opcode.MUFU _ | Opcode.FSETP _ | Opcode.I2F _ | Opcode.F2I _
  | Opcode.MOV | Opcode.SEL | Opcode.S2R _ | Opcode.P2R | Opcode.R2P
  | Opcode.PSETP _ | Opcode.LD _ | Opcode.ST _ | Opcode.ATOM _
  | Opcode.RED _ | Opcode.TLD _ | Opcode.MEMBAR | Opcode.VOTE _
  | Opcode.SHFL _ | Opcode.CAL | Opcode.BAR | Opcode.NOP
  | Opcode.HCALL _ -> fallthrough

let build instrs =
  let n = Array.length instrs in
  if n = 0 then invalid_arg "Cfg.build: empty program";
  let leader = Array.make n false in
  leader.(0) <- true;
  for pc = 0 to n - 1 do
    let i = instrs.(pc) in
    if Opcode.is_control i.Instr.op then begin
      (match i.Instr.op with
       | Opcode.BRA ->
         (match i.Instr.target with
          | Some t -> leader.(t) <- true
          | None -> invalid_arg "Cfg: BRA without resolved target")
       | _ -> ());
      (* HCALL and CAL fall through without ending a block; branches,
         returns and exits end one. *)
      match i.Instr.op with
      | Opcode.BRA | Opcode.RET | Opcode.EXIT ->
        if pc + 1 < n then leader.(pc + 1) <- true
      | _ -> ()
    end
  done;
  let block_of_pc = Array.make n (-1) in
  let firsts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then firsts := pc :: !firsts
  done;
  let firsts = Array.of_list !firsts in
  let nblocks = Array.length firsts in
  let lasts =
    Array.init nblocks (fun b ->
        let next = if b + 1 < nblocks then firsts.(b + 1) else n in
        next - 1)
  in
  Array.iteri
    (fun b first ->
       for pc = first to lasts.(b) do
         block_of_pc.(pc) <- b
       done)
    firsts;
  let succs =
    Array.mapi
      (fun b _ ->
         instr_successors instrs lasts.(b)
         |> List.map (fun pc -> block_of_pc.(pc))
         |> List.sort_uniq Int.compare)
      firsts
  in
  let preds = Array.make nblocks [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> preds.(s) <- b :: preds.(s)) ss)
    succs;
  let blocks =
    Array.init nblocks (fun b ->
        { id = b;
          first = firsts.(b);
          last = lasts.(b);
          succs = succs.(b);
          preds = List.rev preds.(b) })
  in
  let reachable = Array.make nblocks false in
  let rec mark b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter mark blocks.(b).succs
    end
  in
  mark block_of_pc.(0);
  { blocks; block_of_pc; reachable }

let block_at t pc = t.blocks.(t.block_of_pc.(pc))

let reachable_block t b = t.reachable.(b)

let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter_map (fun b -> if b.succs = [] then Some b.id else None)

let pp ppf t =
  Array.iter
    (fun b ->
       Format.fprintf ppf "B%d [%d..%d] -> %a@."
         b.id b.first b.last
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
            Format.pp_print_int)
         b.succs)
    t.blocks
