(** Control-flow graph over an instruction array.

    PCs are instruction indices. Basic blocks are maximal straight-line
    ranges; [CAL] and [HCALL] are treated as straight-line (they return
    to the following instruction).

    {b Invariants} (relied upon by every analysis in [lib/analysis]):
    - The blocks partition the instruction array: every PC in
      [0, Array.length instrs) belongs to exactly one block, and
      [block_of_pc] is total — this includes code that is unreachable
      from the entry (PC 0), such as instructions following an
      unconditional [EXIT] that are not branch targets.
    - [block_of_pc.(pc)] agrees with the block ranges:
      [blocks.(block_of_pc.(pc)).first <= pc <= blocks.(block_of_pc.(pc)).last].
    - Unreachable blocks carry real successor/predecessor edges like
      any other block, and a reachable block never has an unreachable
      predecessor (otherwise that predecessor would itself be
      reachable). Dataflow over the CFG therefore cannot leak state
      from unreachable code into reachable code.
    - [reachable] marks reachability from the entry block (the block
      containing PC 0); analyses that only want live code (linters,
      dead-code checks) filter on it, while [Liveness] and the
      dataflow solver still compute sound states for unreachable
      blocks. *)

type block = {
  id : int;
  first : int;  (** PC of first instruction *)
  last : int;  (** PC of last instruction (inclusive) *)
  succs : int list;  (** successor block ids *)
  preds : int list;  (** predecessor block ids *)
}

type t = {
  blocks : block array;
  block_of_pc : int array;  (** PC -> block id; total (see invariants) *)
  reachable : bool array;
      (** per block id: reachable from the entry block via [succs] *)
}

val instr_successors : Instr.t array -> int -> int list
(** Successor PCs of the instruction at the given PC. *)

val build : Instr.t array -> t

val block_at : t -> int -> block
(** Block containing the given PC. *)

val exit_blocks : t -> int list
(** Ids of blocks with no successors. *)

val reachable_block : t -> int -> bool
(** [reachable_block t b] is true iff block [b] is reachable from the
    entry block (reflexively: the entry block is reachable). *)

val pp : Format.formatter -> t -> unit
