type t = {
  sites : (int, Select.site) Hashtbl.t;
  next_id : int ref;
  mutable handlers : Handler.t array;
}

let create () =
  { sites = Hashtbl.create 64; next_id = ref 0; handlers = [||] }

let site t id =
  match Hashtbl.find_opt t.sites id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Runtime.site: unknown site %d" id)

let sites_for_kernel t name =
  Hashtbl.fold
    (fun _ s acc -> if s.Select.s_kernel = name then s :: acc else acc)
    t.sites []
  |> List.sort (fun a b -> Int.compare a.Select.s_id b.Select.s_id)

let attach t device pairs =
  t.handlers <- Array.of_list (List.map snd pairs);
  let specs = List.mapi (fun i (spec, _) -> (spec, i)) pairs in
  Gpu.Device.set_transform device
    (Some
       (fun kernel ->
          let r = Inject.instrument ~next_id:t.next_id ~specs kernel in
          List.iter
            (fun s -> Hashtbl.replace t.sites s.Select.s_id s)
            r.Inject.sites;
          r.Inject.kernel));
  Gpu.Device.set_hcall device
    (Some
       (fun (h : Gpu.State.hcall_ctx) ->
          let s = site t h.Gpu.State.h_handler in
          let handler = t.handlers.(s.Select.s_handler) in
          let dev = h.Gpu.State.h_launch.Gpu.State.l_device in
          (match dev.Gpu.State.d_tracer with
           | Some c when Trace.Collector.wants c Trace.Record.Handler ->
             let sm = h.Gpu.State.h_sm in
             Trace.Collector.emit c
               (Trace.Record.make
                  ~cycle:
                    (dev.Gpu.State.d_trace_base + sm.Gpu.State.sm_cycle)
                  ~sm:sm.Gpu.State.sm_id
                  ~warp:(Gpu.State.warp_uid h.Gpu.State.h_warp)
                  (Trace.Record.Handler_invoke
                     { site = s.Select.s_id; pc = h.Gpu.State.h_pc }))
           | _ -> ());
          let ctx =
            { Hctx.device = h.Gpu.State.h_launch.Gpu.State.l_device;
              Hctx.launch = h.Gpu.State.h_launch;
              Hctx.sm = h.Gpu.State.h_sm;
              Hctx.warp = h.Gpu.State.h_warp;
              Hctx.site = s;
              Hctx.mask = h.Gpu.State.h_mask }
          in
          handler.Handler.fn ctx;
          (* Device-API cycles the handler charged into the warp's
             scratch accumulator are still there: the interpreter
             folds them into the HCALL latency after we return. *)
          (match dev.Gpu.State.d_telemetry with
           | None -> ()
           | Some tm ->
             Telemetry.Hist.observe tm.Gpu.State.tm_handler_cycles
               h.Gpu.State.h_warp.Gpu.State.w_sassi_scratch;
             let sites = tm.Gpu.State.tm_handler_sites in
             (match Hashtbl.find_opt sites s.Select.s_id with
              | Some r -> incr r
              | None -> Hashtbl.add sites s.Select.s_id (ref 1)))))

let detach device =
  Gpu.Device.set_transform device None;
  Gpu.Device.set_hcall device None

let with_instrumentation device pairs f =
  let t = create () in
  attach t device pairs;
  Fun.protect ~finally:(fun () -> detach device) (fun () -> f t)
