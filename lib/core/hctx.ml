type t = {
  device : Gpu.State.device;
  launch : Gpu.State.launch;
  sm : Gpu.State.sm;
  warp : Gpu.State.warp;
  site : Select.site;
  mask : int;
}

let active_lanes t = Gpu.State.lanes_of_mask t.mask

let lane_active t lane = t.mask land (1 lsl lane) <> 0

let num_active t = Gpu.Value.popc t.mask

let leader t = Gpu.Value.ffs t.mask - 1

let lane_tid t ~lane = Gpu.State.lane_linear_tid t.warp lane

let lane_global_tid t ~lane = Gpu.State.global_tid t.warp ~lane

let charge t ~ops ~cycles =
  (* Route through the SM's accumulator (handlers only run on the
     sequential path, where it aliases [l_stats], but going through
     the SM keeps the "interpreter writes only sm_stats" invariant). *)
  let stats = t.sm.Gpu.State.sm_stats in
  stats.Gpu.Stats.handler_ops <- stats.Gpu.Stats.handler_ops + ops;
  stats.Gpu.Stats.handler_cycles <- stats.Gpu.Stats.handler_cycles + cycles;
  t.warp.Gpu.State.w_sassi_scratch <- t.warp.Gpu.State.w_sassi_scratch + cycles

let sp t ~lane = Gpu.State.reg_get t.warp ~lane Sass.Reg.sp

let stack_read t ~lane ~off =
  Gpu.State.local_read t.warp ~lane ~addr:(sp t ~lane + off)

let stack_write t ~lane ~off v =
  Gpu.State.local_write t.warp ~lane ~addr:(sp t ~lane + off) v
