let alu_cost ctx = Hctx.charge ctx ~ops:1 ~cycles:2

let ballot ctx f =
  alu_cost ctx;
  List.fold_left
    (fun acc lane -> if f lane then acc lor (1 lsl lane) else acc)
    0 (Hctx.active_lanes ctx)

let all ctx f =
  alu_cost ctx;
  List.for_all f (Hctx.active_lanes ctx)

let any ctx f =
  alu_cost ctx;
  List.exists f (Hctx.active_lanes ctx)

let popc ctx v =
  alu_cost ctx;
  Gpu.Value.popc v

let ffs ctx v =
  alu_cost ctx;
  Gpu.Value.ffs v

let shfl ctx f ~src_lane =
  alu_cost ctx;
  if Hctx.lane_active ctx src_lane then f src_lane else f (Hctx.leader ctx)

(* --- Global memory ------------------------------------------------------ *)

let global ctx = ctx.Hctx.device.Gpu.State.d_global

let stats ctx = ctx.Hctx.sm.Gpu.State.sm_stats

let mem_cost ctx ~pairs ~atomic =
  let dev = ctx.Hctx.device in
  let r =
    if atomic then
      Gpu.Memsys.atomic_access dev.Gpu.State.d_mem
        ~sm:ctx.Hctx.sm.Gpu.State.sm_id ~stats:(stats ctx) pairs
    else
      Gpu.Memsys.global_access dev.Gpu.State.d_mem
        ~sm:ctx.Hctx.sm.Gpu.State.sm_id ~stats:(stats ctx) pairs
  in
  Hctx.charge ctx ~ops:1 ~cycles:r.Gpu.Memsys.latency

let read_u32 ctx addr =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:false;
  Gpu.Memory.read (global ctx) ~width:Sass.Opcode.W32 addr

let write_u32 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:false;
  Gpu.Memory.write (global ctx) ~width:Sass.Opcode.W32 addr v

let read_u64 ctx addr =
  mem_cost ctx ~pairs:[ (addr, 8) ] ~atomic:false;
  Gpu.Memory.read_u64 (global ctx) addr

let write_u64 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 8) ] ~atomic:false;
  Gpu.Memory.write_u64 (global ctx) addr v

let atomic_add_u64 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 8) ] ~atomic:true;
  let m = global ctx in
  Gpu.Memory.write_u64 m addr (Gpu.Memory.read_u64 m addr + v)

let atomic_add_u32 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:true;
  let m = global ctx in
  let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
  Gpu.Memory.write m ~width:Sass.Opcode.W32 addr (Gpu.Value.add old v);
  old

let atomic_and_u32 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:true;
  let m = global ctx in
  let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
  Gpu.Memory.write m ~width:Sass.Opcode.W32 addr (old land v)

let atomic_or_u32 ctx addr v =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:true;
  let m = global ctx in
  let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
  Gpu.Memory.write m ~width:Sass.Opcode.W32 addr (old lor v)

let atomic_cas_u32 ctx addr ~compare ~swap =
  mem_cost ctx ~pairs:[ (addr, 4) ] ~atomic:true;
  let m = global ctx in
  let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
  if old = compare then Gpu.Memory.write m ~width:Sass.Opcode.W32 addr swap;
  old

let per_lane generic ctx f ~bytes ~apply =
  let lanes = Hctx.active_lanes ctx in
  let results = List.map f lanes in
  let pairs = List.map (fun (addr, _) -> (addr, bytes)) results in
  if pairs <> [] then generic ctx ~pairs ~atomic:true;
  List.iter apply results

let per_lane_atomic_add_u64 ctx f =
  per_lane mem_cost ctx f ~bytes:8 ~apply:(fun (addr, v) ->
      let m = global ctx in
      Gpu.Memory.write_u64 m addr (Gpu.Memory.read_u64 m addr + v))

let per_lane_atomic_and_u32 ctx f =
  per_lane mem_cost ctx f ~bytes:4 ~apply:(fun (addr, v) ->
      let m = global ctx in
      let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
      Gpu.Memory.write m ~width:Sass.Opcode.W32 addr (old land v))

let per_lane_atomic_or_u32 ctx f =
  per_lane mem_cost ctx f ~bytes:4 ~apply:(fun (addr, v) ->
      let m = global ctx in
      let old = Gpu.Memory.read m ~width:Sass.Opcode.W32 addr in
      Gpu.Memory.write m ~width:Sass.Opcode.W32 addr (old lor v))
