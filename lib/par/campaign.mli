(** Campaign job manifests and ordered task execution.

    A campaign names a matrix of jobs — plain simulation runs and
    fault-injection campaigns — plus one seed; each job's seed derives
    from {!Seed.split} of the campaign seed and the job index (unless
    pinned per job), so results replay bit-identically under any
    [--jobs N]. *)

type kind =
  | Run     (** one uninstrumented device run *)
  | Inject  (** a fault-injection campaign (Case Study IV flow) *)

type job = {
  j_workload : string;       (** registry name, e.g. ["parboil/sgemm"] *)
  j_variant : string option; (** [None] = workload default *)
  j_kind : kind;
  j_injections : int;        (** [Inject] jobs only *)
  j_seed : int option;       (** pin; [None] = split of the campaign seed *)
}

type t = {
  c_name : string;
  c_seed : int;
  c_jobs : job list;
}

val schema : string
(** ["sassi-campaign/1"]. *)

val job :
  ?variant:string -> ?kind:kind -> ?injections:int -> ?seed:int -> string -> job

val make : ?name:string -> ?seed:int -> job list -> t

val job_seed : t -> index:int -> int
(** The job's pinned seed, else [Seed.split ~seed:c_seed ~index]. *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val to_json : t -> Trace.Json.t

val of_json : Trace.Json.t -> (t, string) result

val of_string : string -> (t, string) result

val read : string -> (t, string) result

val write : string -> t -> unit

val run_tasks :
  Pool.t -> (unit -> 'a) array -> on_result:(int -> 'a -> unit) -> 'a array
(** Execute every task on the pool; [on_result] streams each result in
    strict task order (result [i] as soon as tasks [0..i] finished),
    and the returned array is task-indexed. *)
