(** Domain pool executing independent simulation tasks on a
    work-stealing scheduler (one {!Deque} per worker).

    Determinism contract: results are always joined in task-index
    order — {!map_ordered} and {!iter_ordered} observe task [i]'s
    result strictly before task [i+1]'s — so a reduction built on them
    is bit-identical to a sequential run regardless of scheduling.

    Futures must be awaited from the submitting (main) domain, never
    from inside a pool task: a task that blocks on another queued task
    can deadlock the pool. Fan out, then join.

    Introspection: {!stats} snapshots per-worker task/steal/idle
    counters and live queue depths; {!register_telemetry} exposes the
    same numbers through a {!Telemetry.Registry} so the standard
    Prometheus/JSON exporters serve them unchanged. Workers claim
    host-trace track [worker_index + 1] ({!Obs.Tracer.set_track}) at
    spawn, so traced campaigns render one timeline row per domain. *)

type t

type 'a future

val max_domains : int
(** Upper bound on [domains] accepted by {!create} (64). *)

val create : ?domains:int -> unit -> t
(** A pool of [domains] workers (default 2). [domains = 1] spawns no
    domain at all: every task runs inline at submission, making
    `--jobs 1` exactly the sequential baseline.
    @raise Invalid_argument unless [1 <= domains <= max_domains]. *)

val size : t -> int
(** Number of task executors (1 for an inline pool). *)

val submit : t -> (unit -> 'a) -> 'a future
(** Schedule a task (round-robin placement).
    @raise Invalid_argument after {!shutdown}. *)

val submit_on : t -> worker:int -> (unit -> 'a) -> 'a future
(** Schedule onto one specific worker's deque — placement control for
    tests (forcing steals) and for pinning task islands. On an inline
    pool the worker index is ignored. *)

val await : 'a future -> 'a
(** Block until the task finishes. Re-raises, with its original
    backtrace, any exception the task raised. *)

val map_ordered : t -> ('a -> 'b) -> 'a array -> 'b array
(** Run [f] over every element in parallel; result [i] is task [i]'s,
    in order. Exceptions surface at the failed index. *)

val iter_ordered : t -> (unit -> 'a) array -> on_result:(int -> 'a -> unit) -> unit
(** Run every task in parallel, streaming results to [on_result] in
    strict task order (result [i] is delivered as soon as tasks
    [0..i] have all finished). *)

val shutdown : t -> unit
(** Drain every queued task, then join the worker domains. Idempotent.
    Tasks already queued still run; new submissions are refused. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)

(** {1 Introspection} *)

type worker_stats = {
  ws_tasks : int;  (** tasks this worker executed *)
  ws_steals : int;  (** successful steals this worker performed *)
  ws_idle_wakes : int;  (** wake-ups from the idle wait *)
  ws_queue_depth : int;  (** tasks queued on its deque right now *)
}

type stats = {
  s_size : int;  (** task executors (= {!size}) *)
  s_tasks : int;  (** tasks executed, all workers *)
  s_steals : int;  (** successful steals, all workers *)
  s_queued : int;  (** tasks currently queued, all deques *)
  s_workers : worker_stats array;  (** per-worker breakdown *)
}

val stats : t -> stats
(** A consistent-enough snapshot for telemetry: each field is read
    atomically, the record as a whole is not (workers keep running). *)

val register_telemetry : t -> Telemetry.Registry.t -> unit
(** Register the pool's counters and queue-depth gauges (aggregate and
    per-worker, labeled [worker="i"]) so {!Telemetry.Export} serves
    them alongside every other metric. *)
