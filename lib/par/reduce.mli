(** Deterministic result reduction: every combinator folds per-task
    results in task-index order, making parallel output bit-identical
    to sequential. *)

val fold_ordered : ('acc -> 'a -> 'acc) -> 'acc -> 'a array -> 'acc
(** Plain left fold over the task-indexed result array. *)

val stats : Gpu.Stats.t array -> Gpu.Stats.t
(** Fresh accumulator with every task's counters added in task order
    (integer sums: order-insensitive in value, order-fixed by
    construction). *)

val concat : 'a list array -> 'a list
(** Task-order concatenation — e.g. per-task trace record lists. *)

val counters : (string * int) list array -> (string * int) list
(** Name-wise sum of counter lists; key order is first appearance in
    task order. *)
