(** Splittable deterministic seeds (splitmix64 finalizer).

    [split ~seed ~index] is a pure function of its arguments, so a
    campaign can hand task [i] the seed [split ~seed:campaign ~index:i]
    and get identical per-task randomness whether the tasks run
    sequentially, on 2 domains, or on 64. *)

val mix : int -> int
(** One avalanche round; non-negative. *)

val split : seed:int -> index:int -> int
(** Child seed for task [index] of a campaign seeded [seed];
    non-negative. @raise Invalid_argument on a negative index. *)
