(* Domain pool with one work-stealing deque per worker.

   Placement: external submissions round-robin across the worker
   deques; a worker that drains its own deque steals from the others
   (oldest task first), so an uneven matrix — one slow fault-injection
   campaign next to thirty fast cells — still keeps every domain busy.

   Determinism contract: the pool never reorders *results*. Futures
   are awaited by the submitter, and [map_ordered]/[iter_ordered]
   join strictly in task-index order, so any reduction built on them
   is bit-identical to a sequential run no matter how the scheduler
   interleaved the work.

   A pool created with [domains <= 1] spawns nothing and runs each
   task inline at submission: `--jobs 1` *is* the sequential baseline,
   not a one-worker approximation of it. *)

type 'a fstate =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a fstate;
}

type task = unit -> unit

type t = {
  deques : task Deque.t array;  (* one per worker; [||] when inline *)
  mutable domains : unit Domain.t array;
  lock : Mutex.t;               (* guards [stopped] and the sleep cond *)
  cond : Condition.t;           (* signaled on submit and shutdown *)
  mutable stopped : bool;
  steals : int Atomic.t;
  rr : int Atomic.t;            (* round-robin placement cursor *)
}

let size t = max 1 (Array.length t.deques)

let steal_count t = Atomic.get t.steals

let inline_pool t = Array.length t.deques = 0

(* ---------- futures ---------- *)

let make_future () =
  { f_lock = Mutex.create ();
    f_cond = Condition.create ();
    f_state = Pending }

let resolve fut st =
  Mutex.lock fut.f_lock;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_lock

let await fut =
  Mutex.lock fut.f_lock;
  while fut.f_state = Pending do
    Condition.wait fut.f_cond fut.f_lock
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_lock;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run_into fut f =
  match f () with
  | v -> resolve fut (Done v)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    resolve fut (Failed (e, bt))

(* ---------- workers ---------- *)

let try_steal t ~self =
  let n = Array.length t.deques in
  let rec go k =
    if k >= n then None
    else
      match Deque.steal t.deques.((self + k) mod n) with
      | Some task ->
        Atomic.incr t.steals;
        Some task
      | None -> go (k + 1)
  in
  go 1

let has_work t = Array.exists (fun d -> not (Deque.is_empty d)) t.deques

let worker t self =
  let rec loop () =
    match Deque.pop_bottom t.deques.(self) with
    | Some task ->
      task ();
      loop ()
    | None ->
      (match try_steal t ~self with
       | Some task ->
         task ();
         loop ()
       | None ->
         (* Out of work everywhere: sleep until a submit or shutdown.
            The re-check under [lock] closes the race with a submitter
            that pushed between our last scan and the wait. *)
         Mutex.lock t.lock;
         let rec idle () =
           if has_work t then begin
             Mutex.unlock t.lock;
             loop ()
           end
           else if t.stopped then Mutex.unlock t.lock (* drained: exit *)
           else begin
             Condition.wait t.cond t.lock;
             idle ()
           end
         in
         idle ())
  in
  loop ()

(* ---------- lifecycle ---------- *)

let max_domains = 64

let create ?(domains = 2) () =
  if domains < 1 || domains > max_domains then
    invalid_arg
      (Printf.sprintf "Pool.create: domains must be in [1, %d] (got %d)"
         max_domains domains);
  let t =
    { deques =
        (if domains <= 1 then [||]
         else Array.init domains (fun _ -> Deque.create ()));
      domains = [||];
      lock = Mutex.create ();
      cond = Condition.create ();
      stopped = false;
      steals = Atomic.make 0;
      rr = Atomic.make 0 }
  in
  if domains > 1 then
    t.domains <- Array.init domains (fun i -> Domain.spawn (fun () -> worker t i));
  t

let check_running t =
  if t.stopped then invalid_arg "Pool: submitted to a stopped pool"

let submit_on t ~worker:w f =
  check_running t;
  let fut = make_future () in
  if inline_pool t then run_into fut f
  else begin
    let n = Array.length t.deques in
    if w < 0 || w >= n then invalid_arg "Pool.submit_on: no such worker";
    Deque.push_bottom t.deques.(w) (fun () -> run_into fut f);
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end;
  fut

let submit t f =
  check_running t;
  if inline_pool t then begin
    let fut = make_future () in
    run_into fut f;
    fut
  end
  else
    let w = Atomic.fetch_and_add t.rr 1 mod Array.length t.deques in
    submit_on t ~worker:w f

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---------- ordered fan-out ---------- *)

let map_ordered t f xs =
  if inline_pool t then Array.map f xs
  else begin
    let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
    Array.map await futs
  end

let iter_ordered t fs ~on_result =
  if inline_pool t then
    Array.iteri (fun i task -> on_result i (task ())) fs
  else begin
    let futs = Array.map (submit t) fs in
    Array.iteri (fun i fut -> on_result i (await fut)) futs
  end
