(* Domain pool with one work-stealing deque per worker.

   Placement: external submissions round-robin across the worker
   deques; a worker that drains its own deque steals from the others
   (oldest task first), so an uneven matrix — one slow fault-injection
   campaign next to thirty fast cells — still keeps every domain busy.

   Determinism contract: the pool never reorders *results*. Futures
   are awaited by the submitter, and [map_ordered]/[iter_ordered]
   join strictly in task-index order, so any reduction built on them
   is bit-identical to a sequential run no matter how the scheduler
   interleaved the work.

   A pool created with [domains <= 1] spawns nothing and runs each
   task inline at submission: `--jobs 1` *is* the sequential baseline,
   not a one-worker approximation of it.

   Introspection: every worker keeps its own task/steal/idle counters
   (plain per-worker atomics, no shared cache line contention on the
   hot path); [stats] snapshots them together with the live queue
   depths, and [register_telemetry] exposes the same numbers through
   the standard registry so the Prometheus/JSON exporters pick them
   up unchanged. Workers also claim host-trace track [i + 1] at spawn,
   so an [Obs.Tracer]-traced campaign renders one timeline row per
   domain. *)

type 'a fstate =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_lock : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a fstate;
}

type task = unit -> unit

(* One counter block per worker; the inline pool keeps a single block
   for the calling domain so [stats] has one shape everywhere. *)
type worker_counters = {
  wc_tasks : int Atomic.t;
  wc_steals : int Atomic.t;
  wc_idle_wakes : int Atomic.t;
}

type t = {
  deques : task Deque.t array;  (* one per worker; [||] when inline *)
  counters : worker_counters array;  (* length [max 1 domains] *)
  mutable domains : unit Domain.t array;
  lock : Mutex.t;               (* guards [stopped] and the sleep cond *)
  cond : Condition.t;           (* signaled on submit and shutdown *)
  mutable stopped : bool;
  rr : int Atomic.t;            (* round-robin placement cursor *)
}

type worker_stats = {
  ws_tasks : int;
  ws_steals : int;
  ws_idle_wakes : int;
  ws_queue_depth : int;
}

type stats = {
  s_size : int;
  s_tasks : int;
  s_steals : int;
  s_queued : int;
  s_workers : worker_stats array;
}

let size t = max 1 (Array.length t.deques)

let inline_pool t = Array.length t.deques = 0

let stats t =
  let workers =
    Array.mapi
      (fun i wc ->
         { ws_tasks = Atomic.get wc.wc_tasks;
           ws_steals = Atomic.get wc.wc_steals;
           ws_idle_wakes = Atomic.get wc.wc_idle_wakes;
           ws_queue_depth =
             (if inline_pool t then 0 else Deque.length t.deques.(i)) })
      t.counters
  in
  { s_size = size t;
    s_tasks = Array.fold_left (fun a w -> a + w.ws_tasks) 0 workers;
    s_steals = Array.fold_left (fun a w -> a + w.ws_steals) 0 workers;
    s_queued = Array.fold_left (fun a w -> a + w.ws_queue_depth) 0 workers;
    s_workers = workers }

let register_telemetry t reg =
  let open Telemetry.Registry in
  register reg ~help:"Tasks executed by the domain pool"
    "sassi_pool_tasks_total"
    (Counter (fun () -> (stats t).s_tasks));
  register reg ~help:"Successful steals between worker deques"
    "sassi_pool_steals_total"
    (Counter (fun () -> (stats t).s_steals));
  register reg ~help:"Times a worker woke from the idle wait"
    "sassi_pool_idle_wakes_total"
    (Counter
       (fun () ->
          Array.fold_left (fun a w -> a + w.ws_idle_wakes) 0
            (stats t).s_workers));
  register reg ~help:"Tasks currently queued across all deques"
    "sassi_pool_queue_depth"
    (Gauge (fun () -> float_of_int (stats t).s_queued));
  Array.iteri
    (fun i _ ->
       let labels = [ ("worker", string_of_int i) ] in
       register reg ~labels ~help:"Tasks executed by one worker"
         "sassi_pool_worker_tasks_total"
         (Counter (fun () -> (stats t).s_workers.(i).ws_tasks));
       register reg ~labels ~help:"Steals performed by one worker"
         "sassi_pool_worker_steals_total"
         (Counter (fun () -> (stats t).s_workers.(i).ws_steals));
       register reg ~labels ~help:"Queued tasks on one worker's deque"
         "sassi_pool_worker_queue_depth"
         (Gauge (fun () -> float_of_int (stats t).s_workers.(i).ws_queue_depth)))
    t.counters

(* ---------- futures ---------- *)

let make_future () =
  { f_lock = Mutex.create ();
    f_cond = Condition.create ();
    f_state = Pending }

let resolve fut st =
  Mutex.lock fut.f_lock;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_lock

let await fut =
  Mutex.lock fut.f_lock;
  while fut.f_state = Pending do
    Condition.wait fut.f_cond fut.f_lock
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_lock;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run_into fut f =
  match f () with
  | v -> resolve fut (Done v)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    resolve fut (Failed (e, bt))

(* ---------- workers ---------- *)

let try_steal t ~self =
  let n = Array.length t.deques in
  let rec go k =
    if k >= n then None
    else
      match Deque.steal t.deques.((self + k) mod n) with
      | Some task ->
        Atomic.incr t.counters.(self).wc_steals;
        Some task
      | None -> go (k + 1)
  in
  go 1

let has_work t = Array.exists (fun d -> not (Deque.is_empty d)) t.deques

let worker t self =
  Obs.Tracer.set_track (self + 1);
  let run task =
    Atomic.incr t.counters.(self).wc_tasks;
    task ()
  in
  let rec loop () =
    match Deque.pop_bottom t.deques.(self) with
    | Some task ->
      run task;
      loop ()
    | None ->
      (match try_steal t ~self with
       | Some task ->
         run task;
         loop ()
       | None ->
         (* Out of work everywhere: sleep until a submit or shutdown.
            The re-check under [lock] closes the race with a submitter
            that pushed between our last scan and the wait. *)
         Mutex.lock t.lock;
         let rec idle () =
           if has_work t then begin
             Mutex.unlock t.lock;
             loop ()
           end
           else if t.stopped then Mutex.unlock t.lock (* drained: exit *)
           else begin
             Condition.wait t.cond t.lock;
             Atomic.incr t.counters.(self).wc_idle_wakes;
             idle ()
           end
         in
         idle ())
  in
  loop ()

(* ---------- lifecycle ---------- *)

let max_domains = 64

let create ?(domains = 2) () =
  if domains < 1 || domains > max_domains then
    invalid_arg
      (Printf.sprintf "Pool.create: domains must be in [1, %d] (got %d)"
         max_domains domains);
  let t =
    { deques =
        (if domains <= 1 then [||]
         else Array.init domains (fun _ -> Deque.create ()));
      counters =
        Array.init (max 1 domains) (fun _ ->
            { wc_tasks = Atomic.make 0;
              wc_steals = Atomic.make 0;
              wc_idle_wakes = Atomic.make 0 });
      domains = [||];
      lock = Mutex.create ();
      cond = Condition.create ();
      stopped = false;
      rr = Atomic.make 0 }
  in
  if domains > 1 then
    t.domains <- Array.init domains (fun i -> Domain.spawn (fun () -> worker t i));
  t

let check_running t =
  if t.stopped then invalid_arg "Pool: submitted to a stopped pool"

let submit_on t ~worker:w f =
  check_running t;
  let fut = make_future () in
  if inline_pool t then begin
    Atomic.incr t.counters.(0).wc_tasks;
    run_into fut f
  end
  else begin
    let n = Array.length t.deques in
    if w < 0 || w >= n then invalid_arg "Pool.submit_on: no such worker";
    Deque.push_bottom t.deques.(w) (fun () -> run_into fut f);
    Mutex.lock t.lock;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end;
  fut

let submit t f =
  check_running t;
  if inline_pool t then begin
    let fut = make_future () in
    Atomic.incr t.counters.(0).wc_tasks;
    run_into fut f;
    fut
  end
  else
    let w = Atomic.fetch_and_add t.rr 1 mod Array.length t.deques in
    submit_on t ~worker:w f

let shutdown t =
  Mutex.lock t.lock;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  if not was_stopped then begin
    Array.iter Domain.join t.domains;
    t.domains <- [||]
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* ---------- ordered fan-out ---------- *)

let map_ordered t f xs =
  if inline_pool t then
    Array.map
      (fun x ->
         Atomic.incr t.counters.(0).wc_tasks;
         f x)
      xs
  else begin
    let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
    Array.map await futs
  end

let iter_ordered t fs ~on_result =
  if inline_pool t then
    Array.iteri
      (fun i task ->
         Atomic.incr t.counters.(0).wc_tasks;
         on_result i (task ()))
      fs
  else begin
    let futs = Array.map (submit t) fs in
    Array.iteri (fun i fut -> on_result i (await fut)) futs
  end
