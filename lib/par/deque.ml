(* Work-stealing deque: the owner pushes and pops at the bottom (LIFO,
   keeps its own recently-spawned work hot), thieves take from the top
   (FIFO, steal the oldest — and for divide-and-conquer loads usually
   the largest — task). Simulation tasks are coarse (milliseconds to
   seconds each), so a mutex per deque costs nothing measurable and
   buys memory-model simplicity: every field is only ever touched
   under [lock]. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a option array;
  mutable top : int;     (* next slot to steal from *)
  mutable bottom : int;  (* next free slot for the owner *)
}

let create ?(capacity = 64) () =
  if capacity <= 0 then invalid_arg "Deque.create: capacity must be positive";
  { lock = Mutex.create ();
    buf = Array.make capacity None;
    top = 0;
    bottom = 0 }

let locked d f =
  Mutex.lock d.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

let length d = locked d (fun () -> d.bottom - d.top)

let is_empty d = length d = 0

(* Doubles the buffer, compacting live elements to index 0. Indices
   are logical (monotone) and wrapped modulo the capacity on access. *)
let grow d =
  let n = d.bottom - d.top in
  let cap = Array.length d.buf in
  let buf' = Array.make (2 * cap) None in
  for i = 0 to n - 1 do
    buf'.(i) <- d.buf.((d.top + i) mod cap)
  done;
  d.buf <- buf';
  d.top <- 0;
  d.bottom <- n

let push_bottom d x =
  locked d (fun () ->
      let cap = Array.length d.buf in
      if d.bottom - d.top >= cap then grow d;
      d.buf.(d.bottom mod Array.length d.buf) <- Some x;
      d.bottom <- d.bottom + 1)

let take d i =
  let slot = i mod Array.length d.buf in
  let x = d.buf.(slot) in
  d.buf.(slot) <- None;
  x

let pop_bottom d =
  locked d (fun () ->
      if d.bottom = d.top then None
      else begin
        d.bottom <- d.bottom - 1;
        take d d.bottom
      end)

let steal d =
  locked d (fun () ->
      if d.bottom = d.top then None
      else begin
        let x = take d d.top in
        d.top <- d.top + 1;
        x
      end)
