(* Deterministic reduction at join points: every combinator folds the
   per-task results in task-index order, so the merged value is
   bit-identical to what the same tasks produce sequentially. Keep it
   that way — any "merge as they complete" shortcut here silently
   breaks the `--jobs N` invariance the tests and CI pin down. *)

let fold_ordered f init results =
  Array.fold_left f init results

let stats per_task =
  let into = Gpu.Stats.create () in
  Array.iter (fun s -> Gpu.Stats.accumulate ~into s) per_task;
  into

let concat per_task =
  List.concat (Array.to_list per_task)

(* Name-wise sum of counter assoc lists. Key order is first-appearance
   order scanning tasks 0, 1, ... — stable, so two runs that saw the
   same per-task counters emit the same merged list. *)
let counters per_task =
  let order = ref [] in
  let sums = Hashtbl.create 32 in
  Array.iter
    (List.iter (fun (name, v) ->
         match Hashtbl.find_opt sums name with
         | Some prev -> Hashtbl.replace sums name (prev + v)
         | None ->
           order := name :: !order;
           Hashtbl.add sums name v))
    per_task;
  List.rev_map (fun name -> (name, Hashtbl.find sums name)) !order
