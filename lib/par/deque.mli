(** Work-stealing deque. The owning worker pushes and pops at the
    bottom (LIFO); other workers steal from the top (FIFO). All
    operations are thread-safe; the implementation serializes through
    one mutex per deque, which is negligible against the coarse
    simulation tasks it schedules. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Initial capacity defaults to 64; the deque grows as needed.
    @raise Invalid_argument on a non-positive capacity. *)

val push_bottom : 'a t -> 'a -> unit
(** Owner end: append a task. *)

val pop_bottom : 'a t -> 'a option
(** Owner end: remove the most recently pushed task. *)

val steal : 'a t -> 'a option
(** Thief end: remove the oldest task. *)

val length : 'a t -> int

val is_empty : 'a t -> bool
