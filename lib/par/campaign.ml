(* Campaign layer: a job manifest names the full matrix — plain
   simulation runs and fault-injection campaigns side by side — and
   [run_tasks] executes any task array on the pool while streaming
   results back in strict task order, which is what lets callers write
   manifests/reports incrementally without giving up determinism.

   Per-task randomness comes from {!Seed.split} on the campaign seed
   and the task index, so a campaign replays bit-identically under any
   `--jobs N`. *)

let schema = "sassi-campaign/1"

type kind =
  | Run
  | Inject

let kind_to_string = function
  | Run -> "run"
  | Inject -> "inject"

let kind_of_string = function
  | "run" -> Some Run
  | "inject" -> Some Inject
  | _ -> None

type job = {
  j_workload : string;
  j_variant : string option;
  j_kind : kind;
  j_injections : int;       (* Inject jobs only *)
  j_seed : int option;      (* overrides the split of the campaign seed *)
}

type t = {
  c_name : string;
  c_seed : int;
  c_jobs : job list;
}

let job ?variant ?(kind = Run) ?(injections = 24) ?seed workload =
  { j_workload = workload;
    j_variant = variant;
    j_kind = kind;
    j_injections = injections;
    j_seed = seed }

let make ?(name = "campaign") ?(seed = 2025) jobs =
  { c_name = name; c_seed = seed; c_jobs = jobs }

let job_seed t ~index =
  match List.nth_opt t.c_jobs index with
  | Some { j_seed = Some s; _ } -> s
  | _ -> Seed.split ~seed:t.c_seed ~index

(* ---------- JSON ---------- *)

let job_to_json j =
  Trace.Json.Obj
    (("workload", Trace.Json.Str j.j_workload)
     :: (match j.j_variant with
         | Some v -> [ ("variant", Trace.Json.Str v) ]
         | None -> [])
     @ [ ("kind", Trace.Json.Str (kind_to_string j.j_kind));
         ("injections", Trace.Json.Int j.j_injections) ]
     @ (match j.j_seed with
        | Some s -> [ ("seed", Trace.Json.Int s) ]
        | None -> []))

let to_json t =
  Trace.Json.Obj
    [ ("schema", Trace.Json.Str schema);
      ("name", Trace.Json.Str t.c_name);
      ("seed", Trace.Json.Int t.c_seed);
      ("jobs", Trace.Json.List (List.map job_to_json t.c_jobs)) ]

let job_of_json j =
  match Trace.Json.member "workload" j with
  | Some (Trace.Json.Str workload) ->
    let variant =
      match Trace.Json.member "variant" j with
      | Some (Trace.Json.Str v) -> Some v
      | _ -> None
    in
    let kind =
      match Trace.Json.member "kind" j with
      | Some (Trace.Json.Str k) -> kind_of_string k
      | None -> Some Run
      | _ -> None
    in
    (match kind with
     | None -> Error (Printf.sprintf "job %s: unknown kind" workload)
     | Some kind ->
       Ok
         { j_workload = workload;
           j_variant = variant;
           j_kind = kind;
           j_injections =
             (match Trace.Json.member "injections" j with
              | Some (Trace.Json.Int n) -> n
              | _ -> 24);
           j_seed =
             (match Trace.Json.member "seed" j with
              | Some (Trace.Json.Int s) -> Some s
              | _ -> None) })
  | _ -> Error "job without a \"workload\" field"

let of_json j =
  match Trace.Json.member "schema" j with
  | Some (Trace.Json.Str s) when s = schema ->
    let name =
      match Trace.Json.member "name" j with
      | Some (Trace.Json.Str n) -> n
      | _ -> "campaign"
    in
    let seed =
      match Trace.Json.member "seed" j with
      | Some (Trace.Json.Int s) -> s
      | _ -> 2025
    in
    (match Trace.Json.member "jobs" j with
     | Some (Trace.Json.List js) ->
       let rec collect acc = function
         | [] -> Ok (List.rev acc)
         | x :: rest ->
           (match job_of_json x with
            | Ok job -> collect (job :: acc) rest
            | Error e -> Error e)
       in
       (match collect [] js with
        | Ok jobs -> Ok { c_name = name; c_seed = seed; c_jobs = jobs }
        | Error e -> Error e)
     | _ -> Error "campaign without a \"jobs\" list")
  | Some (Trace.Json.Str other) ->
    Error (Printf.sprintf "unsupported campaign schema %S (want %S)" other schema)
  | _ -> Error "not a campaign manifest (missing \"schema\" field)"

let of_string s =
  match Trace.Json.of_string s with
  | Error e -> Error e
  | Ok j -> of_json j

let read path =
  match Trace.Json.parse_file path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok j ->
    (match of_json j with
     | Error e -> Error (Printf.sprintf "%s: %s" path e)
     | Ok t -> Ok t)

let write path t = Trace.Json.write_file path (to_json t)

(* ---------- execution ---------- *)

let run_tasks pool tasks ~on_result =
  let n = Array.length tasks in
  let results = Array.make n None in
  Pool.iter_ordered pool tasks ~on_result:(fun i r ->
      results.(i) <- Some r;
      on_result i r);
  Array.map
    (function Some r -> r | None -> assert false)
    results
