(* Splittable seeds via the splitmix64 finalizer: child seed i of a
   campaign seed depends only on (seed, i), never on how many seeds
   were drawn before it or on which domain asked. That is what makes
   campaign results reproducible under any scheduling order. *)

let golden = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Non-negative native int (folds the top bit away portably). *)
let to_nat i64 = Int64.to_int i64 land max_int

let mix seed = to_nat (mix64 (Int64.of_int seed))

let split ~seed ~index =
  if index < 0 then invalid_arg "Seed.split: negative index";
  let z =
    Int64.add
      (mix64 (Int64.of_int seed))
      (Int64.mul (Int64.of_int (index + 1)) golden)
  in
  to_nat (mix64 z)
