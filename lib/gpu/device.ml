open State

type t = State.device

type arg =
  | I32 of int
  | F32 of float
  | Ptr of int

(* Process-wide default for [d_domains], consulted by [create]. Set
   once by the CLI before any work runs: devices are created deep
   inside campaign/serve tasks (possibly on worker domains), so a
   global default is the only practical way to reach them all. *)
let default_domains = Atomic.make 1

let set_default_domains n =
  if n < 1 then invalid_arg "Device.set_default_domains: must be >= 1";
  Atomic.set default_domains n

let create ?(cfg = Config.default) ?domains () =
  let domains =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Device.create: domains must be >= 1";
      n
    | None -> Atomic.get default_domains
  in
  { d_cfg = cfg;
    d_global = Memory.create ~space:Sass.Opcode.Global cfg.Config.global_mem_bytes;
    d_mem = Memsys.create cfg;
    d_alloc = 256;
    d_transform = None;
    d_transform_gen = 0;
    d_kernel_cache = Hashtbl.create 16;
    d_launch_cbs = [];
    d_exit_cbs = [];
    d_cb_next = 0;
    d_hcall = None;
    d_launch_count = 0;
    d_invocations = Hashtbl.create 16;
    d_texture = None;
    d_host_access = None;
    d_tracer = None;
    d_trace_base = 0;
    d_sampler = None;
    d_telemetry = None;
    d_domains = domains;
    d_sharding_fallbacks = 0 }

let set_domains t n =
  if n < 1 then invalid_arg "Device.set_domains: must be >= 1";
  t.d_domains <- n

let domains t = t.d_domains

let sharding_fallbacks t = t.d_sharding_fallbacks

let config t = t.d_cfg

let host_touch t ~addr ~bytes ~write =
  match t.d_host_access with
  | Some f -> f ~addr ~bytes ~write
  | None -> ()

let set_host_access_hook t f = t.d_host_access <- f

let heap_used t = t.d_alloc

let malloc t bytes =
  let aligned = (t.d_alloc + 255) land lnot 255 in
  if aligned + bytes > Memory.size t.d_global then raise Out_of_memory;
  t.d_alloc <- aligned + bytes;
  aligned

let memset t ~addr ~len c =
  host_touch t ~addr ~bytes:len ~write:true;
  Memory.fill t.d_global ~pos:addr ~len c

let write_i32s t ~addr values =
  host_touch t ~addr ~bytes:(4 * Array.length values) ~write:true;
  Array.iteri
    (fun i v ->
       Memory.write t.d_global ~width:Sass.Opcode.W32 (addr + (4 * i)) v)
    values

let read_i32s t ~addr ~n =
  host_touch t ~addr ~bytes:(4 * n) ~write:false;
  Array.init n (fun i ->
      Memory.read t.d_global ~width:Sass.Opcode.W32 (addr + (4 * i)))

let write_f32s t ~addr values =
  host_touch t ~addr ~bytes:(4 * Array.length values) ~write:true;
  Array.iteri
    (fun i v ->
       Memory.write t.d_global ~width:Sass.Opcode.W32 (addr + (4 * i))
         (Value.bits_of_f32 v))
    values

let read_f32s t ~addr ~n =
  host_touch t ~addr ~bytes:(4 * n) ~write:false;
  Array.init n (fun i ->
      Value.f32_of_bits
        (Memory.read t.d_global ~width:Sass.Opcode.W32 (addr + (4 * i))))

let write_u64s t ~addr values =
  host_touch t ~addr ~bytes:(8 * Array.length values) ~write:true;
  Array.iteri
    (fun i v -> Memory.write_u64 t.d_global (addr + (8 * i)) v)
    values

let read_u64s t ~addr ~n =
  host_touch t ~addr ~bytes:(8 * n) ~write:false;
  Array.init n (fun i -> Memory.read_u64 t.d_global (addr + (8 * i)))

let read_i32 t addr =
  host_touch t ~addr ~bytes:4 ~write:false;
  Memory.read t.d_global ~width:Sass.Opcode.W32 addr

let write_i32 t addr v =
  host_touch t ~addr ~bytes:4 ~write:true;
  Memory.write t.d_global ~width:Sass.Opcode.W32 addr v

let read_u64 t addr =
  host_touch t ~addr ~bytes:8 ~write:false;
  Memory.read_u64 t.d_global addr

let write_u64 t addr v =
  host_touch t ~addr ~bytes:8 ~write:true;
  Memory.write_u64 t.d_global addr v

let bind_texture t ~addr ~bytes = t.d_texture <- Some (addr, bytes)

let set_transform t tr =
  t.d_transform <- tr;
  t.d_transform_gen <- t.d_transform_gen + 1

let set_hcall t h = t.d_hcall <- h

let set_tracer t tracer =
  t.d_tracer <- tracer;
  (* Mirror into the memory system, which emits L1/L2 probe records
     directly; filter there so an uninterested collector keeps the
     memsys fast path branch-only. *)
  Memsys.set_trace_sink t.d_mem
    (match tracer with
     | Some c when Trace.Collector.wants c Trace.Record.Cache -> Some c
     | _ -> None)

let tracer t = t.d_tracer

let set_sampler t sp = t.d_sampler <- sp

let sampler t = t.d_sampler

let set_telemetry t tm =
  t.d_telemetry <- tm;
  (* Mirror the memory-request histograms into the memory system,
     which observes accesses directly. *)
  Memsys.set_telemetry_sink t.d_mem
    (match tm with
     | Some x ->
       Some
         { Memsys.tm_latency = x.tm_mem_latency;
           Memsys.tm_transactions = x.tm_mem_transactions }
     | None -> None)

let telemetry t = t.d_telemetry

(* Callbacks are stored newest-first (O(1) registration; the old
   append made registering n callbacks O(n^2)) and fired through
   [List.rev], preserving subscription order — ids are handed out
   monotonically, so reversed prepend order is sorted-id order. *)
let on_launch t f =
  let id = t.d_cb_next in
  t.d_cb_next <- id + 1;
  t.d_launch_cbs <- (id, f) :: t.d_launch_cbs;
  id

let on_exit t f =
  let id = t.d_cb_next in
  t.d_cb_next <- id + 1;
  t.d_exit_cbs <- (id, f) :: t.d_exit_cbs;
  id

let unsubscribe t id =
  t.d_launch_cbs <- List.filter (fun (i, _) -> i <> id) t.d_launch_cbs;
  t.d_exit_cbs <- List.filter (fun (i, _) -> i <> id) t.d_exit_cbs

let transformed_kernel t kernel =
  match t.d_transform with
  | None -> kernel
  | Some tr ->
    let key = (kernel.Sass.Program.name, t.d_transform_gen) in
    (match Hashtbl.find_opt t.d_kernel_cache key with
     | Some k -> k
     | None ->
       let k = tr kernel in
       (match Sass.Program.validate k with
        | Ok () -> ()
        | Error e ->
          invalid_arg
            (Printf.sprintf "instrumented kernel %s invalid: %s"
               kernel.Sass.Program.name e));
       Hashtbl.replace t.d_kernel_cache key k;
       k)

let launch t ~kernel ~grid ~block ~args =
  Obs.Tracer.with_span ~cat:"launch"
    ~attrs:
      [ ("kernel", Obs.Span.Str kernel.Sass.Program.name);
        ("grid", Obs.Span.Str (Printf.sprintf "%dx%d" (fst grid) (snd grid)));
        ("block", Obs.Span.Str (Printf.sprintf "%dx%d" (fst block) (snd block)))
      ]
    ("launch:" ^ kernel.Sass.Program.name)
  @@ fun () ->
  let kernel = transformed_kernel t kernel in
  let gx, gy = grid in
  let bx, by = block in
  if gx <= 0 || gy <= 0 || bx <= 0 || by <= 0 then
    invalid_arg "Device.launch: empty grid or block";
  if bx * by > 1024 then invalid_arg "Device.launch: block too large";
  let param_bytes = max kernel.Sass.Program.param_bytes (4 * List.length args) in
  let params = Memory.create ~space:Sass.Opcode.Param (max 4 param_bytes) in
  List.iteri
    (fun i a ->
       let v =
         match a with
         | I32 v -> v land Value.mask
         | F32 f -> Value.bits_of_f32 f
         | Ptr p -> p land Value.mask
       in
       Memory.write params ~width:Sass.Opcode.W32 (4 * i) v)
    args;
  let invocation =
    match Hashtbl.find_opt t.d_invocations kernel.Sass.Program.name with
    | Some n -> n
    | None -> 0
  in
  Hashtbl.replace t.d_invocations kernel.Sass.Program.name (invocation + 1);
  let launch =
    { l_device = t;
      l_kernel = kernel;
      l_grid_x = gx;
      l_grid_y = gy;
      l_block_x = bx;
      l_block_y = by;
      l_params = params;
      l_stats = Stats.create ();
      l_id = t.d_launch_count;
      l_invocation = invocation }
  in
  t.d_launch_count <- t.d_launch_count + 1;
  (match t.d_tracer with
   | Some c when Trace.Collector.wants c Trace.Record.Kernel ->
     Trace.Collector.emit c
       (Trace.Record.make ~cycle:t.d_trace_base ~sm:(-1) ~warp:(-1)
          (Trace.Record.Kernel_launch
             { name = kernel.Sass.Program.name;
               launch_id = launch.l_id;
               grid;
               block }))
   | _ -> ());
  List.iter (fun (_, f) -> f launch) (List.rev t.d_launch_cbs);
  Scheduler.run launch;
  List.iter (fun (_, f) -> f launch) (List.rev t.d_exit_cbs);
  (match t.d_tracer with
   | Some c ->
     let cycles = launch.l_stats.Stats.cycles in
     if Trace.Collector.wants c Trace.Record.Kernel then
       Trace.Collector.emit c
         (Trace.Record.make ~cycle:(t.d_trace_base + cycles) ~sm:(-1)
            ~warp:(-1)
            (Trace.Record.Kernel_exit
               { name = kernel.Sass.Program.name;
                 launch_id = launch.l_id;
                 cycles }));
     (* Later launches start after this one on the trace timeline. *)
     t.d_trace_base <- t.d_trace_base + cycles
   | None -> ());
  launch.l_stats

let invocation_count t name =
  match Hashtbl.find_opt t.d_invocations name with
  | Some n -> n
  | None -> 0
