type t = {
  num_sms : int;
  warp_size : int;
  max_warps_per_sm : int;
  issue_width : int;
  global_mem_bytes : int;
  line_bytes : int;
  l1_bytes : int;
  l1_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  lat_alu : int;
  lat_mufu : int;
  lat_shared : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_dram : int;
  lat_atomic : int;
  max_cycles : int;
}

let default =
  { num_sms = 8;
    warp_size = 32;
    max_warps_per_sm = 48;
    issue_width = 2;
    global_mem_bytes = 64 * 1024 * 1024;
    line_bytes = 32;
    l1_bytes = 16 * 1024;
    l1_assoc = 4;
    l2_bytes = 512 * 1024;
    l2_assoc = 8;
    lat_alu = 10;
    lat_mufu = 20;
    lat_shared = 25;
    lat_l1 = 30;
    lat_l2 = 160;
    lat_dram = 350;
    lat_atomic = 60;
    max_cycles = 200_000_000 }

let small =
  { default with
    num_sms = 2;
    max_warps_per_sm = 16;
    global_mem_bytes = 8 * 1024 * 1024;
    l1_bytes = 4 * 1024;
    l2_bytes = 64 * 1024;
    max_cycles = 20_000_000 }

(* Field order matches the record so a manifest's config dump reads
   like this file. *)
let to_assoc t =
  [ ("num_sms", t.num_sms);
    ("warp_size", t.warp_size);
    ("max_warps_per_sm", t.max_warps_per_sm);
    ("issue_width", t.issue_width);
    ("global_mem_bytes", t.global_mem_bytes);
    ("line_bytes", t.line_bytes);
    ("l1_bytes", t.l1_bytes);
    ("l1_assoc", t.l1_assoc);
    ("l2_bytes", t.l2_bytes);
    ("l2_assoc", t.l2_assoc);
    ("lat_alu", t.lat_alu);
    ("lat_mufu", t.lat_mufu);
    ("lat_shared", t.lat_shared);
    ("lat_l1", t.lat_l1);
    ("lat_l2", t.lat_l2);
    ("lat_dram", t.lat_dram);
    ("lat_atomic", t.lat_atomic);
    ("max_cycles", t.max_cycles) ]

let pp ppf t =
  Format.fprintf ppf
    "GPU: %d SMs x %d warps, warp=%d, issue=%d, %d MiB global, %d B lines"
    t.num_sms t.max_warps_per_sm t.warp_size t.issue_width
    (t.global_mem_bytes / (1024 * 1024))
    t.line_bytes
