(** Block dispatch and per-SM warp scheduling.

    Blocks are assigned to SMs round-robin; each SM runs waves of
    resident blocks (bounded by the residency limit) with a
    round-robin ready-warp scheduler issuing [issue_width]
    instructions per cycle. SMs are independent — the L2 is
    partitioned per SM and each SM owns a private observation context
    — so when the device's [d_domains] is greater than 1 they are
    simulated concurrently on OCaml domains and reduced in [sm_id]
    order, bit-identical to the sequential order. Kernels containing
    cross-block atomics or SASSI handlers always take the sequential
    path (counted in [d_sharding_fallbacks]). *)

val run : State.launch -> unit
(** Runs the launch to completion and fills [l_stats.cycles] with the
    maximum SM cycle count (the kernel time).

    @raise Trap.Hang if the watchdog expires or all live warps are
    blocked at an unreleasable barrier. When sharded, the failure of
    the lowest-id failing SM propagates. *)
