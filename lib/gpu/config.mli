(** Machine configuration for the simulated GPU.

    Defaults approximate one GK104 (Tesla K10) device: 8 SMs, 32-lane
    warps, a 32 B memory transaction granularity (the paper's case
    studies use 32 B lines), small L1s and a shared L2. *)

type t = {
  num_sms : int;
  warp_size : int;  (** fixed at 32 by the ISA's vote/ballot semantics *)
  max_warps_per_sm : int;  (** residency limit *)
  issue_width : int;  (** instructions issued per SM cycle *)
  global_mem_bytes : int;
  line_bytes : int;  (** coalescing granularity *)
  l1_bytes : int;
  l1_assoc : int;
  l2_bytes : int;
  l2_assoc : int;
  lat_alu : int;
  lat_mufu : int;
  lat_shared : int;
  lat_l1 : int;
  lat_l2 : int;
  lat_dram : int;
  lat_atomic : int;
  max_cycles : int;  (** per-launch watchdog; exceeding raises {!Trap.Hang} *)
}

val default : t

val small : t
(** A 2-SM configuration for fast unit tests. *)

val to_assoc : t -> (string * int) list
(** Every field as a (name, value) pair, in declaration order; the
    config section of run manifests. *)

val pp : Format.formatter -> t -> unit
