(** The device API: the CUDA-runtime analogue used by host drivers.

    A device owns global memory, the cache hierarchy, an optional
    kernel transform (this is where the SASSI instrumentation pass is
    installed, playing the role of the SASSI-enabled [ptxas]), launch
    and exit callbacks (the CUPTI analogue), and the handler trap. *)

type t = State.device

(** Kernel launch arguments, written into the constant bank in 4-byte
    slots in order. Addresses are 32-bit in this machine. *)
type arg =
  | I32 of int
  | F32 of float
  | Ptr of int

val create : ?cfg:Config.t -> ?domains:int -> unit -> t
(** [domains] is the intra-device parallelism width (how many OCaml
    domains SM simulation may spread over); defaults to the
    process-wide value installed by {!set_default_domains} (initially
    1, i.e. today's sequential behavior). *)

val config : t -> Config.t

(** {1 Intra-device parallelism} *)

val set_default_domains : int -> unit
(** Process-wide default for the [domains] of every subsequently
    created device. Devices are created deep inside campaign and
    serve tasks, so the CLI sets this once before any work runs.
    @raise Invalid_argument when < 1. *)

val set_domains : t -> int -> unit
(** Change one device's sharding width (1 = sequential). Statistics,
    manifests, and telemetry exports are bit-identical across values.
    @raise Invalid_argument when < 1. *)

val domains : t -> int

val sharding_fallbacks : t -> int
(** Launches forced down the sequential path by the eligibility scan
    (cross-block atomics or SASSI handlers). Moves on every launch
    regardless of the domain setting, so exports stay comparable. *)

(** {1 Memory management} *)

val malloc : t -> int -> int
(** Bump allocation in global memory, 256-byte aligned.
    @raise Out_of_memory when the global heap is exhausted. *)

val heap_used : t -> int
(** Global-memory bytes handed out by {!malloc} so far (the bump
    watermark); the extent static out-of-bounds checks bound global
    accesses against. *)

val memset : t -> addr:int -> len:int -> char -> unit

val write_i32s : t -> addr:int -> int array -> unit

val read_i32s : t -> addr:int -> n:int -> int array

val write_f32s : t -> addr:int -> float array -> unit

val read_f32s : t -> addr:int -> n:int -> float array

val write_u64s : t -> addr:int -> int array -> unit

val read_u64s : t -> addr:int -> n:int -> int array

val read_i32 : t -> int -> int

val write_i32 : t -> int -> int -> unit

val read_u64 : t -> int -> int

val write_u64 : t -> int -> int -> unit

val bind_texture : t -> addr:int -> bytes:int -> unit

(** {1 Instrumentation hooks} *)

val set_transform : t -> State.transform option -> unit
(** Installs (or removes) the backend-compiler kernel transform applied
    at launch time. Transformed kernels are cached per generation. *)

val set_hcall : t -> (State.hcall_ctx -> unit) option -> unit

val set_tracer : t -> Trace.Collector.t option -> unit
(** Install (or remove) the activity-record collector. Emission sites
    across the scheduler, interpreter, and memory system check this
    with a single branch, so a device without a tracer pays nothing.
    Prefer {!Cupti.Activity} for the user-facing API. *)

val tracer : t -> Trace.Collector.t option

val set_sampler : t -> State.sampler option -> unit
(** Install (or remove) the statistical PC sampler called from the
    warp scheduler. Like the tracer, a device without a sampler pays
    a single branch per issue slot. Prefer {!Cupti.Pc_sampling} for
    the user-facing API. *)

val sampler : t -> State.sampler option

val set_telemetry : t -> State.telemetry option -> unit
(** Install (or remove) the metrics sink. The memory-request
    histograms are mirrored into the memory system, which observes
    coalesced accesses directly; all other sites check the device
    field with a single branch. The sink must only observe —
    installed telemetry leaves {!Gpu.Stats} bit-identical. Prefer
    {!Cupti.Telemetry} for the user-facing API. *)

val telemetry : t -> State.telemetry option

val set_host_access_hook :
  t -> (addr:int -> bytes:int -> write:bool -> unit) option -> unit
(** Observe all host-side reads/writes of device global memory (the
    memcpy traffic). Used by heterogeneous CPU+GPU analyses such as
    {!Handlers.Uvm_profile} (paper Section 9.4). *)

(** {1 Callbacks (CUPTI substrate)} *)

val on_launch : t -> (State.launch -> unit) -> int
(** Subscribe to kernel-launch events (before execution); returns a
    subscription id. *)

val on_exit : t -> (State.launch -> unit) -> int
(** Subscribe to kernel-exit events (after execution). *)

val unsubscribe : t -> int -> unit

(** {1 Kernel launch} *)

val launch :
  t ->
  kernel:Sass.Program.kernel ->
  grid:int * int ->
  block:int * int ->
  args:arg list ->
  Stats.t
(** Applies the installed transform, runs launch callbacks, executes
    the kernel to completion, runs exit callbacks, and returns the
    launch statistics. Exceptions from traps propagate after no
    callbacks have been skipped on the way in. *)

val invocation_count : t -> string -> int
(** How many times a kernel of the given name has been launched. *)
