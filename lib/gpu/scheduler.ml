open State

let make_block launch flat =
  let gx = launch.l_grid_x in
  let threads = launch.l_block_x * launch.l_block_y in
  let nwarps = (threads + warp_size - 1) / warp_size in
  let kernel = launch.l_kernel in
  let frame = kernel.Sass.Program.frame_bytes in
  let block =
    { b_x = flat mod gx;
      b_y = flat / gx;
      b_flat = flat;
      b_shared =
        Memory.create ~space:Sass.Opcode.Shared
          (max 4 kernel.Sass.Program.shared_bytes);
      b_launch = launch;
      b_warps = [||];
      b_arrived = 0;
      b_alive = nwarps }
  in
  let make_warp wid =
    let w =
      { w_id = wid;
        w_block = block;
        w_regs = Array.make (warp_size * 256) 0;
        w_preds = Array.make (warp_size * 7) false;
        w_local =
          Memory.create ~space:Sass.Opcode.Local
            (max 4 (warp_size * frame));
        w_stack =
          [ { e_pc = 0;
              e_rpc = -1;
              e_mask = initial_mask ~block_threads:threads ~warp_id:wid } ];
        w_call_stack = [];
        w_status = W_ready;
        w_ready_at = 0;
        w_stall_code = 0;
        w_sassi_scratch = 0 }
    in
    (* ABI: R1 is the stack pointer, initialized to the top of the
       thread's local frame. *)
    for lane = 0 to warp_size - 1 do
      reg_set w ~lane Sass.Reg.sp frame
    done;
    w
  in
  block.b_warps <- Array.init nwarps make_warp;
  block

(* Spend sampling credit and fire the PC-sampling hook when it runs
   out. Credit is denominated in issue slots so the sampling rate is
   independent of how busy the SM is; the [None] branch is the whole
   cost when profiling is off. *)
let spend_sample_credit dev sm slots =
  match dev.d_sampler with
  | None -> ()
  | Some sp ->
    sp.sp_credit <- sp.sp_credit - slots;
    if sp.sp_credit <= 0 then begin
      sp.sp_credit <- sp.sp_period;
      sp.sp_hit sm
    end

(* Take one telemetry series sample: gauges are deltas of the
   cumulative launch statistics since the previous sample. SMs
   simulate sequentially, so counter movement while one SM runs is
   that SM's; [tm_base] is re-seeded per SM by {!run}. Column order
   must match [Cupti.Telemetry.series_columns]. *)
let telemetry_sample dev sm tm =
  let stats = sm.sm_launch.l_stats in
  let base = tm.tm_base in
  let cyc = sm.sm_cycle in
  let dcyc = float_of_int (max 1 (cyc - base.ts_cycle)) in
  let rate hits misses bh bm =
    let dh = hits - bh and dm = misses - bm in
    if dh + dm = 0 then 0. else float_of_int dh /. float_of_int (dh + dm)
  in
  let occupancy =
    float_of_int (Array.length sm.sm_warps)
    /. float_of_int (max 1 dev.d_cfg.Config.max_warps_per_sm)
  in
  let issue_rate = float_of_int (sm.sm_issued - base.ts_issued) /. dcyc in
  (* Little's law: outstanding DRAM requests = arrival rate x DRAM
     latency, with L2 misses as the arrivals over the interval. *)
  let dram_queue_depth =
    float_of_int
      ((stats.Stats.l2_misses - base.ts_l2_misses)
       * dev.d_cfg.Config.lat_dram)
    /. dcyc
  in
  Telemetry.Series.sample tm.tm_series
    ~cycle:(dev.d_trace_base + cyc) ~sm:sm.sm_id
    [| occupancy;
       issue_rate;
       rate stats.Stats.l1_hits stats.Stats.l1_misses
         base.ts_l1_hits base.ts_l1_misses;
       rate stats.Stats.l2_hits stats.Stats.l2_misses
         base.ts_l2_hits base.ts_l2_misses;
       dram_queue_depth |];
  base.ts_cycle <- cyc;
  base.ts_issued <- sm.sm_issued;
  base.ts_l1_hits <- stats.Stats.l1_hits;
  base.ts_l1_misses <- stats.Stats.l1_misses;
  base.ts_l2_hits <- stats.Stats.l2_hits;
  base.ts_l2_misses <- stats.Stats.l2_misses;
  tm.tm_next_sample <- cyc + tm.tm_interval

(* Single-branch tick checked once per scheduling decision; a device
   without telemetry pays only the [None] match. *)
let telemetry_tick dev sm =
  match dev.d_telemetry with
  | None -> ()
  | Some tm -> if sm.sm_cycle >= tm.tm_next_sample then telemetry_sample dev sm tm

let run_sm_wave sm =
  let launch = sm.sm_launch in
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let n = Array.length sm.sm_warps in
  let alive = ref 0 in
  Array.iter (fun w -> if w.w_status <> W_done then incr alive) sm.sm_warps;
  while !alive > 0 do
    if sm.sm_cycle > cfg.Config.max_cycles then
      raise (Trap.Hang { cycles = sm.sm_cycle });
    (* Round-robin pick of a ready warp. *)
    let found = ref (-1) in
    let k = ref 0 in
    while !found < 0 && !k < n do
      let idx = (sm.sm_rr + !k) mod n in
      let w = sm.sm_warps.(idx) in
      if w.w_status = W_ready && w.w_ready_at <= sm.sm_cycle then found := idx;
      incr k
    done;
    if !found >= 0 then begin
      let idx = !found in
      sm.sm_rr <- (idx + 1) mod n;
      let w = sm.sm_warps.(idx) in
      Exec.step sm w;
      sm.sm_issued <- sm.sm_issued + 1;
      if sm.sm_issued mod cfg.Config.issue_width = 0 then
        sm.sm_cycle <- sm.sm_cycle + 1;
      spend_sample_credit dev sm 1;
      telemetry_tick dev sm
    end
    else begin
      (* Nobody ready: advance to the next wakeup. *)
      let next = ref max_int in
      Array.iter
        (fun w ->
           if w.w_status = W_ready && w.w_ready_at < !next then
             next := w.w_ready_at)
        sm.sm_warps;
      if !next = max_int then begin
        (* All remaining warps wait at a barrier that can never be
           released: a deadlock, reported as a hang. *)
        let still_alive =
          Array.exists (fun w -> w.w_status <> W_done) sm.sm_warps
        in
        if still_alive then raise (Trap.Hang { cycles = sm.sm_cycle })
        else alive := 0
      end
      else begin
        let before = sm.sm_cycle in
        sm.sm_cycle <- max (sm.sm_cycle + 1) !next;
        (* Idle cycles are unissued slots: they count toward the
           sampling period so stall-heavy phases are sampled at the
           same rate as busy ones. *)
        spend_sample_credit dev sm
          ((sm.sm_cycle - before) * cfg.Config.issue_width);
        telemetry_tick dev sm
      end
    end;
    (* Recompute alive lazily: cheap because warps only transition to
       W_done inside Exec.step for this SM's warps. *)
    if !found >= 0 && !alive > 0 then begin
      let a = ref 0 in
      Array.iter (fun w -> if w.w_status <> W_done then incr a) sm.sm_warps;
      alive := !a
    end
  done

let run launch =
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let nblocks = launch.l_grid_x * launch.l_grid_y in
  let threads = launch.l_block_x * launch.l_block_y in
  let warps_per_block = (threads + warp_size - 1) / warp_size in
  let blocks_at_once =
    max 1 (cfg.Config.max_warps_per_sm / max 1 warps_per_block)
  in
  let max_cycle = ref 0 in
  for sm_id = 0 to cfg.Config.num_sms - 1 do
    let sm =
      { sm_id; sm_launch = launch; sm_cycle = 0; sm_issued = 0;
        sm_warps = [||]; sm_rr = 0 }
    in
    (* Re-seed the series baseline: each SM starts its own clock at 0,
       and the cumulative launch counters carry earlier SMs' work. *)
    (match dev.d_telemetry with
     | None -> ()
     | Some tm ->
       let b = tm.tm_base in
       let stats = launch.l_stats in
       b.ts_cycle <- 0;
       b.ts_issued <- 0;
       b.ts_l1_hits <- stats.Stats.l1_hits;
       b.ts_l1_misses <- stats.Stats.l1_misses;
       b.ts_l2_hits <- stats.Stats.l2_hits;
       b.ts_l2_misses <- stats.Stats.l2_misses;
       tm.tm_next_sample <- tm.tm_interval);
    (* Blocks handled by this SM, in waves of [blocks_at_once]. *)
    let my_blocks = ref [] in
    let b = ref sm_id in
    while !b < nblocks do
      my_blocks := !b :: !my_blocks;
      b := !b + cfg.Config.num_sms
    done;
    let my_blocks = List.rev !my_blocks in
    let rec waves = function
      | [] -> ()
      | blocks ->
        let rec take n = function
          | [] -> ([], [])
          | x :: rest when n > 0 ->
            let t, d = take (n - 1) rest in
            (x :: t, d)
          | rest -> ([], rest)
        in
        let now, later = take blocks_at_once blocks in
        let made = List.map (make_block launch) now in
        (match dev.d_tracer with
         | Some c when Trace.Collector.wants c Trace.Record.Block ->
           List.iter
             (fun blk ->
                Trace.Collector.emit c
                  (Trace.Record.make
                     ~cycle:(dev.d_trace_base + sm.sm_cycle) ~sm:sm_id
                     ~warp:(-1)
                     (Trace.Record.Block_dispatch
                        { block = blk.b_flat;
                          warps = Array.length blk.b_warps })))
             made
         | _ -> ());
        sm.sm_warps <-
          Array.concat (List.map (fun blk -> blk.b_warps) made);
        sm.sm_rr <- 0;
        let wave_start = sm.sm_cycle in
        run_sm_wave sm;
        (* Occupancy accounting: every warp of the wave stays resident
           (occupying an SM warp slot) until the wave retires. *)
        let stats = launch.l_stats in
        stats.Stats.resident_warp_cycles <-
          stats.Stats.resident_warp_cycles
          + (Array.length sm.sm_warps * (sm.sm_cycle - wave_start));
        waves later
    in
    waves my_blocks;
    launch.l_stats.Stats.sm_active_cycles <-
      launch.l_stats.Stats.sm_active_cycles + sm.sm_cycle;
    if sm.sm_cycle > !max_cycle then max_cycle := sm.sm_cycle
  done;
  launch.l_stats.Stats.cycles <- !max_cycle
