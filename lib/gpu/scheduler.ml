open State

let make_block launch flat =
  let gx = launch.l_grid_x in
  let threads = launch.l_block_x * launch.l_block_y in
  let nwarps = (threads + warp_size - 1) / warp_size in
  let kernel = launch.l_kernel in
  let frame = kernel.Sass.Program.frame_bytes in
  let block =
    { b_x = flat mod gx;
      b_y = flat / gx;
      b_flat = flat;
      b_shared =
        Memory.create ~space:Sass.Opcode.Shared
          (max 4 kernel.Sass.Program.shared_bytes);
      b_launch = launch;
      b_warps = [||];
      b_arrived = 0;
      b_alive = nwarps }
  in
  let make_warp wid =
    let w =
      { w_id = wid;
        w_block = block;
        w_regs = Array.make (warp_size * 256) 0;
        w_preds = Array.make (warp_size * 7) false;
        w_local =
          Memory.create ~space:Sass.Opcode.Local
            (max 4 (warp_size * frame));
        w_stack =
          [ { e_pc = 0;
              e_rpc = -1;
              e_mask = initial_mask ~block_threads:threads ~warp_id:wid } ];
        w_call_stack = [];
        w_status = W_ready;
        w_ready_at = 0;
        w_stall_code = 0;
        w_sassi_scratch = 0 }
    in
    (* ABI: R1 is the stack pointer, initialized to the top of the
       thread's local frame. *)
    for lane = 0 to warp_size - 1 do
      reg_set w ~lane Sass.Reg.sp frame
    done;
    w
  in
  block.b_warps <- Array.init nwarps make_warp;
  block

(* Spend sampling credit and fire the PC-sampling hook when it runs
   out. Credit is denominated in issue slots so the sampling rate is
   independent of how busy the SM is; the [None] branch is the whole
   cost when profiling is off. *)
let spend_sample_credit sm slots =
  match sm.sm_sampler with
  | None -> ()
  | Some sp ->
    sp.sp_credit <- sp.sp_credit - slots;
    if sp.sp_credit <= 0 then begin
      sp.sp_credit <- sp.sp_period;
      sp.sp_hit sm
    end

(* Take one telemetry series sample: gauges are deltas of the SM's
   statistics since the previous sample. [sm_stats] and [tm_base] are
   both per-SM (aliasing the launch-wide objects in sequential mode,
   where [tm_base] is re-seeded at each SM start), so counter movement
   between two samples is exactly this SM's. Column order must match
   [Cupti.Telemetry.series_columns]. *)
let telemetry_sample dev sm tm =
  let stats = sm.sm_stats in
  let base = tm.tm_base in
  let cyc = sm.sm_cycle in
  let dcyc = float_of_int (max 1 (cyc - base.ts_cycle)) in
  let rate hits misses bh bm =
    let dh = hits - bh and dm = misses - bm in
    if dh + dm = 0 then 0. else float_of_int dh /. float_of_int (dh + dm)
  in
  let occupancy =
    float_of_int (Array.length sm.sm_warps)
    /. float_of_int (max 1 dev.d_cfg.Config.max_warps_per_sm)
  in
  let issue_rate = float_of_int (sm.sm_issued - base.ts_issued) /. dcyc in
  (* Little's law: outstanding DRAM requests = arrival rate x DRAM
     latency, with L2 misses as the arrivals over the interval. *)
  let dram_queue_depth =
    float_of_int
      ((stats.Stats.l2_misses - base.ts_l2_misses)
       * dev.d_cfg.Config.lat_dram)
    /. dcyc
  in
  Telemetry.Series.sample tm.tm_series
    ~cycle:(dev.d_trace_base + cyc) ~sm:sm.sm_id
    [| occupancy;
       issue_rate;
       rate stats.Stats.l1_hits stats.Stats.l1_misses
         base.ts_l1_hits base.ts_l1_misses;
       rate stats.Stats.l2_hits stats.Stats.l2_misses
         base.ts_l2_hits base.ts_l2_misses;
       dram_queue_depth |];
  base.ts_cycle <- cyc;
  base.ts_issued <- sm.sm_issued;
  base.ts_l1_hits <- stats.Stats.l1_hits;
  base.ts_l1_misses <- stats.Stats.l1_misses;
  base.ts_l2_hits <- stats.Stats.l2_hits;
  base.ts_l2_misses <- stats.Stats.l2_misses;
  tm.tm_next_sample <- cyc + tm.tm_interval

(* Single-branch tick checked once per scheduling decision; an SM
   without telemetry pays only the [None] match. *)
let telemetry_tick dev sm =
  match sm.sm_telemetry with
  | None -> ()
  | Some tm -> if sm.sm_cycle >= tm.tm_next_sample then telemetry_sample dev sm tm

let run_sm_wave sm =
  let launch = sm.sm_launch in
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let n = Array.length sm.sm_warps in
  let alive = ref 0 in
  Array.iter (fun w -> if w.w_status <> W_done then incr alive) sm.sm_warps;
  while !alive > 0 do
    if sm.sm_cycle > cfg.Config.max_cycles then
      raise (Trap.Hang { cycles = sm.sm_cycle });
    (* Round-robin pick of a ready warp. *)
    let found = ref (-1) in
    let k = ref 0 in
    while !found < 0 && !k < n do
      let idx = (sm.sm_rr + !k) mod n in
      let w = sm.sm_warps.(idx) in
      if w.w_status = W_ready && w.w_ready_at <= sm.sm_cycle then found := idx;
      incr k
    done;
    if !found >= 0 then begin
      let idx = !found in
      sm.sm_rr <- (idx + 1) mod n;
      let w = sm.sm_warps.(idx) in
      Exec.step sm w;
      (* Only the stepped warp itself can retire during its own step
         (barrier release only moves W_barrier -> W_ready), so a
         single status check replaces the old O(warps) recount. *)
      if w.w_status = W_done then decr alive;
      sm.sm_issued <- sm.sm_issued + 1;
      if sm.sm_issued mod cfg.Config.issue_width = 0 then
        sm.sm_cycle <- sm.sm_cycle + 1;
      spend_sample_credit sm 1;
      telemetry_tick dev sm
    end
    else begin
      (* Nobody ready: advance to the next wakeup. *)
      let next = ref max_int in
      Array.iter
        (fun w ->
           if w.w_status = W_ready && w.w_ready_at < !next then
             next := w.w_ready_at)
        sm.sm_warps;
      if !next = max_int then begin
        (* All remaining warps wait at a barrier that can never be
           released: a deadlock, reported as a hang. *)
        let still_alive =
          Array.exists (fun w -> w.w_status <> W_done) sm.sm_warps
        in
        if still_alive then raise (Trap.Hang { cycles = sm.sm_cycle })
        else alive := 0
      end
      else begin
        let before = sm.sm_cycle in
        sm.sm_cycle <- max (sm.sm_cycle + 1) !next;
        (* Idle cycles are unissued slots: they count toward the
           sampling period so stall-heavy phases are sampled at the
           same rate as busy ones. *)
        spend_sample_credit sm
          ((sm.sm_cycle - before) * cfg.Config.issue_width);
        telemetry_tick dev sm
      end
    end
  done

(* Simulate one SM to completion: dispatch its round-robin share of
   the grid in waves of [blocks_at_once], accounting occupancy and
   active cycles into the SM's own stats. The observation context
   (stats/tracer/telemetry/sampler) is whatever the caller wired into
   the [sm] record: the launch-wide objects sequentially, private
   per-SM instances under sharding. *)
let run_one_sm launch ~sm_id ~stats ~tracer ~telemetry ~sampler ~blocks_at_once
    ~nblocks =
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let sm =
    { sm_id; sm_launch = launch; sm_cycle = 0; sm_issued = 0;
      sm_warps = [||]; sm_rr = 0; sm_stats = stats; sm_tracer = tracer;
      sm_telemetry = telemetry; sm_sampler = sampler }
  in
  (* Each SM starts with a full sampling period. (Also applied on the
     sequential path: carrying leftover credit from the previous SM
     would make the sample placement order-dependent, which sharding
     cannot reproduce. See DESIGN.) *)
  (match sampler with
   | None -> ()
   | Some sp -> sp.sp_credit <- sp.sp_period);
  (* Seed the series baseline: the SM's clock starts at 0, and its
     stats accumulator may carry earlier work (sequential mode, where
     it aliases the cumulative launch stats). *)
  (match telemetry with
   | None -> ()
   | Some tm ->
     let b = tm.tm_base in
     b.ts_cycle <- 0;
     b.ts_issued <- 0;
     b.ts_l1_hits <- stats.Stats.l1_hits;
     b.ts_l1_misses <- stats.Stats.l1_misses;
     b.ts_l2_hits <- stats.Stats.l2_hits;
     b.ts_l2_misses <- stats.Stats.l2_misses;
     tm.tm_next_sample <- tm.tm_interval);
  (* Blocks handled by this SM, in waves of [blocks_at_once]. *)
  let my_blocks = ref [] in
  let b = ref sm_id in
  while !b < nblocks do
    my_blocks := !b :: !my_blocks;
    b := !b + cfg.Config.num_sms
  done;
  let my_blocks = List.rev !my_blocks in
  let rec waves = function
    | [] -> ()
    | blocks ->
      let rec take n = function
        | [] -> ([], [])
        | x :: rest when n > 0 ->
          let t, d = take (n - 1) rest in
          (x :: t, d)
        | rest -> ([], rest)
      in
      let now, later = take blocks_at_once blocks in
      let made = List.map (make_block launch) now in
      (match sm.sm_tracer with
       | Some c when Trace.Collector.wants c Trace.Record.Block ->
         List.iter
           (fun blk ->
              Trace.Collector.emit c
                (Trace.Record.make
                   ~cycle:(dev.d_trace_base + sm.sm_cycle) ~sm:sm_id
                   ~warp:(-1)
                   (Trace.Record.Block_dispatch
                      { block = blk.b_flat;
                        warps = Array.length blk.b_warps })))
           made
       | _ -> ());
      sm.sm_warps <-
        Array.concat (List.map (fun blk -> blk.b_warps) made);
      sm.sm_rr <- 0;
      let wave_start = sm.sm_cycle in
      run_sm_wave sm;
      (* Occupancy accounting: every warp of the wave stays resident
         (occupying an SM warp slot) until the wave retires. *)
      stats.Stats.resident_warp_cycles <-
        stats.Stats.resident_warp_cycles
        + (Array.length sm.sm_warps * (sm.sm_cycle - wave_start));
      waves later
  in
  waves my_blocks;
  stats.Stats.sm_active_cycles <- stats.Stats.sm_active_cycles + sm.sm_cycle;
  sm

(* --- Sharding eligibility ------------------------------------------------ *)

(* A launch may shard only when no instruction can observe another
   SM's work mid-flight: cross-block atomics (ATOM/RED on the global
   space) read-modify-write shared lines, and SASSI handlers (HCALL)
   run host code with launch-wide state. Both force the sequential
   path. The scan sees the post-transform kernel, so injected
   instrumentation is caught too. *)
(* Pointer-parameter origin analysis backing the eligibility scan: a
   flow-sensitive forward dataflow mapping each GPR, at each program
   point, to the bitset of kernel parameter slots its value may
   derive from (bit [i] = 4-byte slot [i]; the top bit is an "unknown
   base" token for addresses not traceable to any parameter). Joins
   are pointwise unions over {!Sass.Cfg.instr_successors} edges, so
   register reuse by the allocator (the same register holding an
   input pointer in one range and the output pointer in another) does
   not smear origins together. Values loaded from memory are treated
   as data, not pointers: in this machine, pointers enter kernels
   only through the constant bank, never through global/shared/local
   memory, so the assumption is sound for every compilable kernel. *)

let unknown_base_bit = 1 lsl 62

let slot_bit byte_off =
  let slot = byte_off / 4 in
  if slot >= 0 && slot < 62 then 1 lsl slot else unknown_base_bit

(* In-state per PC: reg index -> origin bitset. Worklist seeded with
   every PC so unreachable code is analyzed too (its accesses then
   count toward the load/store sets — the conservative direction). *)
let param_origin_states (instrs : Sass.Instr.t array) =
  let n = Array.length instrs in
  let states = Array.init n (fun _ -> Array.make 256 0) in
  let pending = Array.make n true in
  let work = Queue.create () in
  for pc = 0 to n - 1 do
    Queue.add pc work
  done;
  while not (Queue.is_empty work) do
    let pc = Queue.pop work in
    pending.(pc) <- false;
    let st = states.(pc) in
    let i = instrs.(pc) in
    let src_origin = function
      | Sass.Instr.SReg r -> st.(Sass.Reg.index r)
      | Sass.Instr.SParam off -> slot_bit off
      | Sass.Instr.SImm _ | Sass.Instr.SPred _ -> 0
    in
    let incoming =
      match Sass.Instr.mem_access i with
      | Some m when m.Sass.Instr.m_is_load ->
        (* LD Param propagates the parameter slot it names; loads
           from data spaces produce data (origin 0). *)
        (match m.Sass.Instr.m_space with
         | Sass.Opcode.Param ->
           (match (m.Sass.Instr.m_base, m.Sass.Instr.m_off) with
            | Sass.Instr.SImm b, Sass.Instr.SImm o -> slot_bit (b + o)
            | Sass.Instr.SParam off, Sass.Instr.SImm 0
            | Sass.Instr.SImm 0, Sass.Instr.SParam off -> slot_bit off
            | _ -> unknown_base_bit)
         | _ -> 0)
      | _ ->
        (* Base pointers survive only the ops address arithmetic uses
           on bases: add/sub, min/max clamps, bit masks, moves and
           selects. Scaling ops (multiply, shift, divide) consume
           offsets — an integer parameter like a row stride flows
           into every address through them, and keeping its origin
           would alias all loads with all stores. IMAD propagates
           only the addend; its product term is a scaled offset. *)
        let fold srcs =
          List.fold_left (fun acc s -> acc lor src_origin s) 0 srcs
        in
        (match i.Sass.Instr.op with
         | Sass.Opcode.IADD | Sass.Opcode.ISUB | Sass.Opcode.IMNMX _
         | Sass.Opcode.LOP _ | Sass.Opcode.MOV | Sass.Opcode.SEL ->
           fold i.Sass.Instr.srcs
         | Sass.Opcode.IMAD ->
           (match i.Sass.Instr.srcs with
            | _ :: _ :: addend :: _ -> src_origin addend
            | _ -> 0)
         | _ -> 0)
    in
    let out = Array.copy st in
    List.iter
      (fun r ->
        if not (Sass.Reg.is_zero r) then begin
          let idx = Sass.Reg.index r in
          (* A guarded write may not execute, so it only widens. *)
          if Sass.Pred.is_always i.Sass.Instr.guard then out.(idx) <- incoming
          else out.(idx) <- out.(idx) lor incoming
        end)
      (Sass.Instr.defs i);
    List.iter
      (fun succ ->
        if succ >= 0 && succ < n then begin
          let s = states.(succ) in
          let changed = ref false in
          Array.iteri
            (fun k v ->
              let joined = v lor out.(k) in
              if joined <> v then begin
                s.(k) <- joined;
                changed := true
              end)
            s;
          if !changed && not pending.(succ) then begin
            pending.(succ) <- true;
            Queue.add succ work
          end
        end)
      (Sass.Cfg.instr_successors instrs pc)
  done;
  states

(* A kernel can shard only when no global load can alias a global
   store from another block. We approximate alias-freedom at the
   parameter level: collect the origin sets of every global load and
   store address and require them to be disjoint. This catches
   plain-store cross-block read-after-write hazards (e.g. an in-place
   update where one block reads a cell another block wrote) that the
   ATOM/RED scan cannot see. Write-write overlap through one
   parameter is not flagged — every kernel stores its outputs through
   some pointer — so kernels where two *blocks* store different
   values to the *same* address remain out of model, as they are for
   real hardware. [CAL] forces a fallback because the CFG treats it
   as straight-line, which would hide callee effects (the DSL never
   emits it; only hand-built programs could). *)
let shardable_kernel (k : Sass.Program.kernel) =
  let no_traps =
    Array.for_all
      (fun (i : Sass.Instr.t) ->
        match i.Sass.Instr.op with
        | Sass.Opcode.ATOM (Sass.Opcode.Global, _, _)
        | Sass.Opcode.RED (Sass.Opcode.Global, _, _)
        | Sass.Opcode.HCALL _ | Sass.Opcode.CAL -> false
        | _ -> true)
      k.Sass.Program.instrs
  in
  no_traps
  &&
  let states = param_origin_states k.Sass.Program.instrs in
  let load_set = ref 0 and store_set = ref 0 in
  Array.iteri
    (fun pc (i : Sass.Instr.t) ->
      match Sass.Instr.mem_access i with
      | Some m when m.Sass.Instr.m_space = Sass.Opcode.Global ->
        let st = states.(pc) in
        let of_src = function
          | Sass.Instr.SReg r -> st.(Sass.Reg.index r)
          | Sass.Instr.SParam off -> slot_bit off
          | Sass.Instr.SImm _ | Sass.Instr.SPred _ -> 0
        in
        let o = of_src m.Sass.Instr.m_base lor of_src m.Sass.Instr.m_off in
        let o = if o = 0 then unknown_base_bit else o in
        if m.Sass.Instr.m_is_load then load_set := !load_set lor o;
        if m.Sass.Instr.m_is_store then store_set := !store_set lor o
      | _ -> ())
    k.Sass.Program.instrs;
  !load_set land !store_set = 0

(* --- Per-SM observation contexts (sharded mode) -------------------------- *)

(* Private, lossless per-SM trace buffer: a collector with the shared
   collector's category mask whose ring spills full batches to a list
   instead of dropping. Replaying batches + residue in [sm_id] order
   reproduces the shared ring's sequential content bit-for-bit for
   every overflow policy, because sequential emission is SM-major. *)
type sm_trace_buffer = {
  tb_collector : Trace.Collector.t;
  tb_batches : Trace.Record.t array list ref;  (* newest batch first *)
}

let make_trace_buffer shared =
  let cats =
    List.filter (Trace.Collector.wants shared) Trace.Record.all_categories
  in
  let batches = ref [] in
  let c =
    Trace.Collector.create ~capacity:8192
      ~policy:(Trace.Ring.Flush_callback (fun arr -> batches := arr :: !batches))
      ~categories:cats ()
  in
  { tb_collector = c; tb_batches = batches }

let replay_trace_buffer ~into tb =
  List.iter
    (fun arr -> Array.iter (fun r -> Trace.Collector.emit into r) arr)
    (List.rev !(tb.tb_batches));
  List.iter
    (fun r -> Trace.Collector.emit into r)
    (Trace.Collector.records tb.tb_collector)

let clone_telemetry (tm : telemetry) =
  { tm_interval = tm.tm_interval;
    tm_mem_latency = Telemetry.Hist.create ();
    tm_mem_transactions = Telemetry.Hist.create ();
    tm_branch_lanes = Telemetry.Hist.create ();
    tm_divergent_taken_lanes = Telemetry.Hist.create ();
    tm_barrier_wait = Telemetry.Hist.create ();
    tm_handler_cycles = Telemetry.Hist.create ();
    tm_handler_sites = Hashtbl.create 8;
    tm_series =
      Telemetry.Series.create
        ~capacity:(Telemetry.Series.capacity tm.tm_series)
        ~interval:(Telemetry.Series.interval tm.tm_series)
        (Telemetry.Series.columns tm.tm_series);
    tm_next_sample = tm.tm_interval;
    tm_base =
      { ts_cycle = 0; ts_issued = 0; ts_l1_hits = 0; ts_l1_misses = 0;
        ts_l2_hits = 0; ts_l2_misses = 0 } }

let merge_telemetry ~into p =
  Telemetry.Hist.merge ~into:into.tm_mem_latency p.tm_mem_latency;
  Telemetry.Hist.merge ~into:into.tm_mem_transactions p.tm_mem_transactions;
  Telemetry.Hist.merge ~into:into.tm_branch_lanes p.tm_branch_lanes;
  Telemetry.Hist.merge ~into:into.tm_divergent_taken_lanes
    p.tm_divergent_taken_lanes;
  Telemetry.Hist.merge ~into:into.tm_barrier_wait p.tm_barrier_wait;
  Telemetry.Hist.merge ~into:into.tm_handler_cycles p.tm_handler_cycles;
  Hashtbl.iter
    (fun site n ->
      match Hashtbl.find_opt into.tm_handler_sites site with
      | Some r -> r := !r + !n
      | None -> Hashtbl.add into.tm_handler_sites site (ref !n))
    p.tm_handler_sites;
  Telemetry.Series.absorb ~into:into.tm_series p.tm_series

(* --- Launch-level driver ------------------------------------------------- *)

let run_sequential launch ~blocks_at_once ~nblocks =
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let max_cycle = ref 0 in
  for sm_id = 0 to cfg.Config.num_sms - 1 do
    let sm =
      run_one_sm launch ~sm_id ~stats:launch.l_stats ~tracer:dev.d_tracer
        ~telemetry:dev.d_telemetry ~sampler:dev.d_sampler ~blocks_at_once
        ~nblocks
    in
    if sm.sm_cycle > !max_cycle then max_cycle := sm.sm_cycle
  done;
  launch.l_stats.Stats.cycles <- !max_cycle

let run_sharded launch ~blocks_at_once ~nblocks ~domains =
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let num_sms = cfg.Config.num_sms in
  let workers = min domains num_sms in
  (* Private per-SM contexts, allocated up front on the host domain. *)
  let stats = Array.init num_sms (fun _ -> Stats.create ()) in
  let tracers =
    Array.init num_sms (fun _ ->
        Option.map (fun c -> make_trace_buffer c) dev.d_tracer)
  in
  let telemetries =
    Array.init num_sms (fun _ -> Option.map clone_telemetry dev.d_telemetry)
  in
  let samplers =
    Array.init num_sms (fun _ ->
        Option.map
          (fun sp ->
            { sp_period = sp.sp_period; sp_credit = sp.sp_period;
              sp_hit = sp.sp_hit })
          dev.d_sampler)
  in
  (* Point the memory system's per-SM slots at the private sinks for
     the duration of the launch. *)
  Array.iteri
    (fun sm_id tb ->
      let trace =
        match (dev.d_tracer, tb) with
        | Some c, Some tb when Trace.Collector.wants c Trace.Record.Cache ->
          Some tb.tb_collector
        | _ -> None
      in
      let telemetry =
        Option.map
          (fun tm ->
            { Memsys.tm_latency = tm.tm_mem_latency;
              Memsys.tm_transactions = tm.tm_mem_transactions })
          telemetries.(sm_id)
      in
      Memsys.override_slot_sinks dev.d_mem ~sm:sm_id ~trace ~telemetry)
    tracers;
  let failures = Array.make num_sms None in
  let run_chunk first =
    let sm_id = ref first in
    while !sm_id < num_sms do
      let i = !sm_id in
      (try
         let sm =
           run_one_sm launch ~sm_id:i ~stats:stats.(i)
             ~tracer:(Option.map (fun tb -> tb.tb_collector) tracers.(i))
             ~telemetry:telemetries.(i) ~sampler:samplers.(i) ~blocks_at_once
             ~nblocks
         in
         (* Stage the SM's cycle count so the merge's max over private
            accumulators reconstructs the kernel time. *)
         stats.(i).Stats.cycles <- sm.sm_cycle
       with e -> failures.(i) <- Some e);
      sm_id := !sm_id + workers
    done
  in
  let spawned =
    Array.init (workers - 1) (fun j ->
        Domain.spawn (fun () -> run_chunk (j + 1)))
  in
  run_chunk 0;
  Array.iter Domain.join spawned;
  Memsys.restore_slot_sinks dev.d_mem;
  (* Deterministic failure propagation: the lowest-id failing SM wins,
     matching which trap the sequential loop would have hit first. *)
  Array.iter (function Some e -> raise e | None -> ()) failures;
  (* Reduce everything in sm_id order. Per-SM cycle counts are staged
     in each private accumulator's [cycles] field so that the merge's
     max reconstructs the kernel time. *)
  for sm_id = 0 to num_sms - 1 do
    Stats.merge ~into:launch.l_stats stats.(sm_id);
    (match (dev.d_tracer, tracers.(sm_id)) with
     | Some shared, Some tb -> replay_trace_buffer ~into:shared tb
     | _ -> ());
    match (dev.d_telemetry, telemetries.(sm_id)) with
    | Some shared, Some p -> merge_telemetry ~into:shared p
    | _ -> ()
  done

let run launch =
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let nblocks = launch.l_grid_x * launch.l_grid_y in
  let threads = launch.l_block_x * launch.l_block_y in
  let warps_per_block = (threads + warp_size - 1) / warp_size in
  let blocks_at_once =
    max 1 (cfg.Config.max_warps_per_sm / max 1 warps_per_block)
  in
  (* Eligibility is a property of the (post-transform) kernel, not of
     the domain setting: count fallbacks on every launch so the
     counter — exported through telemetry — is byte-identical across
     [--device-domains] values. *)
  let eligible = shardable_kernel launch.l_kernel in
  if not eligible then
    dev.d_sharding_fallbacks <- dev.d_sharding_fallbacks + 1;
  if dev.d_domains > 1 && eligible && cfg.Config.num_sms > 1 then
    run_sharded launch ~blocks_at_once ~nblocks ~domains:dev.d_domains
  else run_sequential launch ~blocks_at_once ~nblocks
