type t = {
  mutable cycles : int;
  mutable warp_instrs : int;
  mutable thread_instrs : int;
  mutable mem_instrs : int;
  mutable ctrl_instrs : int;
  mutable sync_instrs : int;
  mutable numeric_instrs : int;
  mutable texture_instrs : int;
  mutable spill_instrs : int;
  mutable branches : int;
  mutable divergent_branches : int;
  mutable global_transactions : int;
  mutable gld_requested_bytes : int;
  mutable gld_transactions : int;
  mutable gst_requested_bytes : int;
  mutable gst_transactions : int;
  mutable shared_conflicts : int;
  mutable shared_accesses : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable resident_warp_cycles : int;
  mutable sm_active_cycles : int;
  mutable handler_ops : int;
  mutable handler_cycles : int;
  mutable hcalls : int;
}

let create () =
  { cycles = 0;
    warp_instrs = 0;
    thread_instrs = 0;
    mem_instrs = 0;
    ctrl_instrs = 0;
    sync_instrs = 0;
    numeric_instrs = 0;
    texture_instrs = 0;
    spill_instrs = 0;
    branches = 0;
    divergent_branches = 0;
    global_transactions = 0;
    gld_requested_bytes = 0;
    gld_transactions = 0;
    gst_requested_bytes = 0;
    gst_transactions = 0;
    shared_conflicts = 0;
    shared_accesses = 0;
    l1_hits = 0;
    l1_misses = 0;
    l2_hits = 0;
    l2_misses = 0;
    resident_warp_cycles = 0;
    sm_active_cycles = 0;
    handler_ops = 0;
    handler_cycles = 0;
    hcalls = 0 }

(* The single source of truth for counter names: pp, --stats-json and
   the derived-metrics engine all read counters through this list. *)
let to_assoc t =
  [ ("cycles", t.cycles);
    ("warp_instrs", t.warp_instrs);
    ("thread_instrs", t.thread_instrs);
    ("mem_instrs", t.mem_instrs);
    ("ctrl_instrs", t.ctrl_instrs);
    ("sync_instrs", t.sync_instrs);
    ("numeric_instrs", t.numeric_instrs);
    ("texture_instrs", t.texture_instrs);
    ("spill_instrs", t.spill_instrs);
    ("branches", t.branches);
    ("divergent_branches", t.divergent_branches);
    ("global_transactions", t.global_transactions);
    ("gld_requested_bytes", t.gld_requested_bytes);
    ("gld_transactions", t.gld_transactions);
    ("gst_requested_bytes", t.gst_requested_bytes);
    ("gst_transactions", t.gst_transactions);
    ("shared_conflicts", t.shared_conflicts);
    ("shared_accesses", t.shared_accesses);
    ("l1_hits", t.l1_hits);
    ("l1_misses", t.l1_misses);
    ("l2_hits", t.l2_hits);
    ("l2_misses", t.l2_misses);
    ("resident_warp_cycles", t.resident_warp_cycles);
    ("sm_active_cycles", t.sm_active_cycles);
    ("handler_ops", t.handler_ops);
    ("handler_cycles", t.handler_cycles);
    ("hcalls", t.hcalls) ]

let reset t =
  t.cycles <- 0;
  t.warp_instrs <- 0;
  t.thread_instrs <- 0;
  t.mem_instrs <- 0;
  t.ctrl_instrs <- 0;
  t.sync_instrs <- 0;
  t.numeric_instrs <- 0;
  t.texture_instrs <- 0;
  t.spill_instrs <- 0;
  t.branches <- 0;
  t.divergent_branches <- 0;
  t.global_transactions <- 0;
  t.gld_requested_bytes <- 0;
  t.gld_transactions <- 0;
  t.gst_requested_bytes <- 0;
  t.gst_transactions <- 0;
  t.shared_conflicts <- 0;
  t.shared_accesses <- 0;
  t.l1_hits <- 0;
  t.l1_misses <- 0;
  t.l2_hits <- 0;
  t.l2_misses <- 0;
  t.resident_warp_cycles <- 0;
  t.sm_active_cycles <- 0;
  t.handler_ops <- 0;
  t.handler_cycles <- 0;
  t.hcalls <- 0

let accumulate ~into t =
  into.cycles <- into.cycles + t.cycles;
  into.warp_instrs <- into.warp_instrs + t.warp_instrs;
  into.thread_instrs <- into.thread_instrs + t.thread_instrs;
  into.mem_instrs <- into.mem_instrs + t.mem_instrs;
  into.ctrl_instrs <- into.ctrl_instrs + t.ctrl_instrs;
  into.sync_instrs <- into.sync_instrs + t.sync_instrs;
  into.numeric_instrs <- into.numeric_instrs + t.numeric_instrs;
  into.texture_instrs <- into.texture_instrs + t.texture_instrs;
  into.spill_instrs <- into.spill_instrs + t.spill_instrs;
  into.branches <- into.branches + t.branches;
  into.divergent_branches <- into.divergent_branches + t.divergent_branches;
  into.global_transactions <- into.global_transactions + t.global_transactions;
  into.gld_requested_bytes <- into.gld_requested_bytes + t.gld_requested_bytes;
  into.gld_transactions <- into.gld_transactions + t.gld_transactions;
  into.gst_requested_bytes <- into.gst_requested_bytes + t.gst_requested_bytes;
  into.gst_transactions <- into.gst_transactions + t.gst_transactions;
  into.shared_conflicts <- into.shared_conflicts + t.shared_conflicts;
  into.shared_accesses <- into.shared_accesses + t.shared_accesses;
  into.l1_hits <- into.l1_hits + t.l1_hits;
  into.l1_misses <- into.l1_misses + t.l1_misses;
  into.l2_hits <- into.l2_hits + t.l2_hits;
  into.l2_misses <- into.l2_misses + t.l2_misses;
  into.resident_warp_cycles <-
    into.resident_warp_cycles + t.resident_warp_cycles;
  into.sm_active_cycles <- into.sm_active_cycles + t.sm_active_cycles;
  into.handler_ops <- into.handler_ops + t.handler_ops;
  into.handler_cycles <- into.handler_cycles + t.handler_cycles;
  into.hcalls <- into.hcalls + t.hcalls

(* Name-indexed setters, used by [merge] so that the reduction is
   driven by [to_assoc]: a counter present in the record but missing
   from either list makes [merge] raise instead of silently dropping
   the value. *)
let setters : (string * (t -> int -> unit)) list =
  [ ("cycles", fun t v -> t.cycles <- v);
    ("warp_instrs", fun t v -> t.warp_instrs <- v);
    ("thread_instrs", fun t v -> t.thread_instrs <- v);
    ("mem_instrs", fun t v -> t.mem_instrs <- v);
    ("ctrl_instrs", fun t v -> t.ctrl_instrs <- v);
    ("sync_instrs", fun t v -> t.sync_instrs <- v);
    ("numeric_instrs", fun t v -> t.numeric_instrs <- v);
    ("texture_instrs", fun t v -> t.texture_instrs <- v);
    ("spill_instrs", fun t v -> t.spill_instrs <- v);
    ("branches", fun t v -> t.branches <- v);
    ("divergent_branches", fun t v -> t.divergent_branches <- v);
    ("global_transactions", fun t v -> t.global_transactions <- v);
    ("gld_requested_bytes", fun t v -> t.gld_requested_bytes <- v);
    ("gld_transactions", fun t v -> t.gld_transactions <- v);
    ("gst_requested_bytes", fun t v -> t.gst_requested_bytes <- v);
    ("gst_transactions", fun t v -> t.gst_transactions <- v);
    ("shared_conflicts", fun t v -> t.shared_conflicts <- v);
    ("shared_accesses", fun t v -> t.shared_accesses <- v);
    ("l1_hits", fun t v -> t.l1_hits <- v);
    ("l1_misses", fun t v -> t.l1_misses <- v);
    ("l2_hits", fun t v -> t.l2_hits <- v);
    ("l2_misses", fun t v -> t.l2_misses <- v);
    ("resident_warp_cycles", fun t v -> t.resident_warp_cycles <- v);
    ("sm_active_cycles", fun t v -> t.sm_active_cycles <- v);
    ("handler_ops", fun t v -> t.handler_ops <- v);
    ("handler_cycles", fun t v -> t.handler_cycles <- v);
    ("hcalls", fun t v -> t.hcalls <- v) ]

let merge ~into t =
  let pairs = to_assoc t in
  let into_pairs = to_assoc into in
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name pairs) then
        invalid_arg
          (Printf.sprintf "Stats.merge: counter %s missing from to_assoc" name))
    setters;
  List.iter
    (fun (name, v) ->
      let set =
        try List.assoc name setters
        with Not_found ->
          invalid_arg
            (Printf.sprintf "Stats.merge: no setter for counter %s" name)
      in
      let cur = List.assoc name into_pairs in
      set into (if String.equal name "cycles" then max cur v else cur + v))
    pairs

let count_instr t op ~active_lanes =
  let open Sass.Opcode in
  t.warp_instrs <- t.warp_instrs + 1;
  t.thread_instrs <- t.thread_instrs + active_lanes;
  if is_mem op then t.mem_instrs <- t.mem_instrs + 1;
  if is_control op then t.ctrl_instrs <- t.ctrl_instrs + 1;
  if is_sync op then t.sync_instrs <- t.sync_instrs + 1;
  if is_numeric op then t.numeric_instrs <- t.numeric_instrs + 1;
  if is_texture op then t.texture_instrs <- t.texture_instrs + 1;
  if is_spill_or_fill op then t.spill_instrs <- t.spill_instrs + 1

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (name, v) -> Format.fprintf ppf "%s=%d" name v)
    ppf (to_assoc t)
