open Sass
open State

let iter_lanes mask f =
  for lane = 0 to warp_size - 1 do
    if mask land (1 lsl lane) <> 0 then f lane
  done

let fold_lanes mask f acc =
  let acc = ref acc in
  for lane = 0 to warp_size - 1 do
    if mask land (1 lsl lane) <> 0 then acc := f !acc lane
  done;
  !acc

let src_value launch w ~lane = function
  | Instr.SReg r -> reg_get w ~lane r
  | Instr.SImm i -> i land Value.mask
  | Instr.SParam off -> Memory.read launch.l_params ~width:Opcode.W32 off
  | Instr.SPred p -> if pred_get w ~lane p then 1 else 0

let special_value sm w ~lane = function
  | Opcode.Sr_tid_x -> tid_x w ~lane
  | Opcode.Sr_tid_y -> tid_y w ~lane
  | Opcode.Sr_ntid_x -> w.w_block.b_launch.l_block_x
  | Opcode.Sr_ntid_y -> w.w_block.b_launch.l_block_y
  | Opcode.Sr_ctaid_x -> w.w_block.b_x
  | Opcode.Sr_ctaid_y -> w.w_block.b_y
  | Opcode.Sr_nctaid_x -> w.w_block.b_launch.l_grid_x
  | Opcode.Sr_nctaid_y -> w.w_block.b_launch.l_grid_y
  | Opcode.Sr_laneid -> lane
  | Opcode.Sr_warpid -> w.w_id
  | Opcode.Sr_smid -> sm.sm_id
  | Opcode.Sr_clock -> sm.sm_cycle land Value.mask

let release_barrier_if_ready blk =
  if blk.b_alive > 0 && blk.b_arrived >= blk.b_alive then begin
    Array.iter
      (fun w -> if w.w_status = W_barrier then w.w_status <- W_ready)
      blk.b_warps;
    blk.b_arrived <- 0
  end

(* Remove exiting lanes from every stack entry; returns true if the
   warp has fully exited. *)
let retire_lanes w exiting =
  w.w_stack <-
    List.filter_map
      (fun e ->
         let m = e.e_mask land lnot exiting in
         if m = 0 then None
         else begin
           e.e_mask <- m;
           Some e
         end)
      w.w_stack;
  w.w_stack = []

let warp_exit w exiting =
  if retire_lanes w exiting then begin
    w.w_status <- W_done;
    let blk = w.w_block in
    blk.b_alive <- blk.b_alive - 1;
    release_barrier_if_ready blk
  end

(* --- Memory access helpers -------------------------------------------- *)

let frame_bytes w = w.w_block.b_launch.l_kernel.Program.frame_bytes

(* Synthetic interleaved physical address so that same-offset accesses
   from the 32 lanes of a warp coalesce perfectly, as hardware local
   memory does. *)
let local_phys w ~lane addr =
  let launch = w.w_block.b_launch in
  let warps_per_block =
    (launch.l_block_x * launch.l_block_y + warp_size - 1) / warp_size
  in
  let warp_uid = (w.w_block.b_flat * warps_per_block) + w.w_id in
  Memsys.local_window
  + (warp_uid * frame_bytes w * warp_size)
  + (addr * warp_size) + (lane * 4)

let texture_read launch ~width idx =
  let dev = launch.l_device in
  match dev.d_texture with
  | None ->
    raise (Trap.Memory_fault
             { space = Opcode.Tex; addr = idx; kind = Trap.Out_of_bounds })
  | Some (base, bytes) ->
    let elt = Opcode.bytes_of_width width in
    let n = bytes / elt in
    (* Texture clamp addressing mode; coordinates are signed. *)
    let idx = Value.signed idx in
    let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
    let addr = base + (idx * elt) in
    (Memory.read dev.d_global ~width addr, addr)

(* --- Activity tracing -------------------------------------------------- *)

(* One warp-level memory transaction record; the [None] branch is the
   whole cost when tracing is off. *)
let trace_mem dev sm w ~space ~write ~width ~lanes (r : Memsys.result) =
  match sm.sm_tracer with
  | None -> ()
  | Some c ->
    if Trace.Collector.wants c Trace.Record.Mem then
      Trace.Collector.emit c
        (Trace.Record.make
           ~cycle:(dev.d_trace_base + sm.sm_cycle)
           ~sm:sm.sm_id ~warp:(warp_uid w)
           (Trace.Record.Mem_access
              { space;
                write;
                bytes = Opcode.bytes_of_width width;
                lanes;
                transactions = r.Memsys.transactions }))

(* --- The main dispatch ------------------------------------------------- *)

let step sm w =
  (* Reconvergence: pop entries whose PC reached their RPC. *)
  let rec reconverge () =
    match w.w_stack with
    | e :: rest when e.e_rpc >= 0 && e.e_pc = e.e_rpc ->
      w.w_stack <- rest;
      reconverge ()
    | _ -> ()
  in
  reconverge ();
  let e = tos w in
  let launch = w.w_block.b_launch in
  let dev = launch.l_device in
  let cfg = dev.d_cfg in
  let stats = sm.sm_stats in
  let pc = e.e_pc in
  let instrs = launch.l_kernel.Program.instrs in
  if pc < 0 || pc >= Array.length instrs then
    raise (Trap.Memory_fault
             { space = Opcode.Global; addr = pc;
               kind = Trap.Invalid_instruction });
  let i = instrs.(pc) in
  let exec_mask =
    fold_lanes e.e_mask
      (fun acc lane ->
         if guard_passes w ~lane i.Instr.guard then acc lor (1 lsl lane)
         else acc)
      0
  in
  let nactive = Value.popc exec_mask in
  Stats.count_instr stats i.Instr.op ~active_lanes:nactive;
  (match sm.sm_tracer with
   | Some _ ->
     (* Stamp this SM's context attached to L1/L2 probe records
        emitted from inside the memory system. *)
     Memsys.set_trace_ctx dev.d_mem ~sm:sm.sm_id
       ~cycle:(dev.d_trace_base + sm.sm_cycle)
       ~warp:(warp_uid w)
   | None -> ());
  let latency = ref cfg.Config.lat_alu in
  let next_pc = ref (pc + 1) in
  let sv lane s = src_value launch w ~lane s in
  let dst1 () =
    match i.Instr.dsts with
    | d :: _ -> d
    | [] -> invalid_arg "Exec: missing destination"
  in
  let src n =
    match List.nth_opt i.Instr.srcs n with
    | Some s -> s
    | None -> invalid_arg "Exec: missing source operand"
  in
  (* Hoist operand decoding out of the 32-lane loops: uniform operands
     (immediates, constant-bank reads) are evaluated once. *)
  let evaluator s =
    match s with
    | Instr.SImm v ->
      let v = v land Value.mask in
      fun _ -> v
    | Instr.SParam off ->
      let v = Memory.read launch.l_params ~width:Opcode.W32 off in
      fun _ -> v
    | Instr.SReg r -> fun lane -> reg_get w ~lane r
    | Instr.SPred p -> fun lane -> if pred_get w ~lane p then 1 else 0
  in
  let unop f =
    let d = dst1 () in
    let e0 = evaluator (src 0) in
    iter_lanes exec_mask (fun lane -> reg_set w ~lane d (f (e0 lane)))
  in
  let binop f =
    let d = dst1 () in
    let e0 = evaluator (src 0) in
    let e1 = evaluator (src 1) in
    iter_lanes exec_mask (fun lane ->
        reg_set w ~lane d (f (e0 lane) (e1 lane)))
  in
  let ternop f =
    let d = dst1 () in
    let e0 = evaluator (src 0) in
    let e1 = evaluator (src 1) in
    let e2 = evaluator (src 2) in
    iter_lanes exec_mask (fun lane ->
        reg_set w ~lane d (f (e0 lane) (e1 lane) (e2 lane)))
  in
  let setp f =
    let p =
      match i.Instr.pdsts with
      | p :: _ -> p
      | [] -> invalid_arg "Exec: SETP without predicate destination"
    in
    let e0 = evaluator (src 0) in
    let e1 = evaluator (src 1) in
    iter_lanes exec_mask (fun lane ->
        pred_set w ~lane p (f (e0 lane) (e1 lane)))
  in
  (* Effective address for memory ops: src0 + src1. *)
  let eff_addr =
    lazy
      (let e0 = evaluator (src 0) in
       let e1 = evaluator (src 1) in
       fun lane -> Value.wrap (e0 lane + e1 lane))
  in
  let eff_addr lane = Lazy.force eff_addr lane in
  let mem_pairs width =
    fold_lanes exec_mask
      (fun acc lane -> (eff_addr lane, Opcode.bytes_of_width width) :: acc)
      []
  in
  (match i.Instr.op with
   | Opcode.IADD -> binop Value.add
   | Opcode.ISUB -> binop Value.sub
   | Opcode.IMUL -> binop Value.mul
   | Opcode.IMAD -> ternop Value.mad
   | Opcode.IDIV sign ->
     latency := cfg.Config.lat_mufu * 2;
     binop (Value.div ~sign)
   | Opcode.IMOD sign ->
     latency := cfg.Config.lat_mufu * 2;
     binop (Value.rem ~sign)
   | Opcode.IMNMX cmp -> binop (Value.min_max ~cmp)
   | Opcode.SHL -> binop Value.shl
   | Opcode.SHR sign -> binop (Value.shr ~sign)
   | Opcode.LOP logic -> binop (Value.logic logic)
   | Opcode.BREV -> unop Value.brev
   | Opcode.POPC -> unop Value.popc
   | Opcode.FLO -> unop Value.flo
   | Opcode.ISETP (cmp, sign) -> setp (Value.compare_int ~cmp ~sign)
   | Opcode.FADD -> binop Value.fadd
   | Opcode.FSUB -> binop Value.fsub
   | Opcode.FMUL -> binop Value.fmul
   | Opcode.FFMA -> ternop Value.ffma
   | Opcode.FMNMX cmp -> binop (Value.fmin_max ~cmp)
   | Opcode.MUFU f ->
     latency := cfg.Config.lat_mufu;
     unop (Value.mufu f)
   | Opcode.FSETP cmp -> setp (Value.compare_f32 ~cmp)
   | Opcode.I2F sign -> unop (Value.i2f ~sign)
   | Opcode.F2I sign -> unop (Value.f2i ~sign)
   | Opcode.MOV -> unop (fun v -> v)
   | Opcode.SEL ->
     iter_lanes exec_mask (fun lane ->
         let c = sv lane (src 2) <> 0 in
         reg_set w ~lane (dst1 ())
           (if c then sv lane (src 0) else sv lane (src 1)))
   | Opcode.S2R sr ->
     iter_lanes exec_mask (fun lane ->
         reg_set w ~lane (dst1 ()) (special_value sm w ~lane sr))
   | Opcode.P2R ->
     iter_lanes exec_mask (fun lane ->
         let bits =
           List.fold_left
             (fun acc j ->
                if pred_get w ~lane (Pred.p j) then acc lor (1 lsl j) else acc)
             0 [ 0; 1; 2; 3; 4; 5; 6 ]
         in
         reg_set w ~lane (dst1 ()) bits)
   | Opcode.R2P ->
     iter_lanes exec_mask (fun lane ->
         let bits = sv lane (src 0) in
         List.iter
           (fun j -> pred_set w ~lane (Pred.p j) (bits land (1 lsl j) <> 0))
           [ 0; 1; 2; 3; 4; 5; 6 ])
   | Opcode.PSETP logic ->
     let p =
       match i.Instr.pdsts with
       | p :: _ -> p
       | [] -> invalid_arg "Exec: PSETP without predicate destination"
     in
     iter_lanes exec_mask (fun lane ->
         let a = sv lane (src 0) <> 0 in
         let b =
           match List.nth_opt i.Instr.srcs 1 with
           | Some s -> sv lane s <> 0
           | None -> false
         in
         let r =
           match logic with
           | Opcode.L_and -> a && b
           | Opcode.L_or -> a || b
           | Opcode.L_xor -> a <> b
           | Opcode.L_not -> not a
         in
         pred_set w ~lane p r)
   | Opcode.LD (space, width) ->
     (match space with
      | Opcode.Global ->
        iter_lanes exec_mask (fun lane ->
            let addr = eff_addr lane in
            match width with
            | Opcode.W64 ->
              (match i.Instr.dsts with
               | [ lo; hi ] ->
                 reg_set w ~lane lo
                   (Memory.read dev.d_global ~width:Opcode.W32 addr);
                 reg_set w ~lane hi
                   (Memory.read dev.d_global ~width:Opcode.W32 (addr + 4))
               | _ -> invalid_arg "Exec: LD.64 needs a register pair")
            | _ -> reg_set w ~lane (dst1 ()) (Memory.read dev.d_global ~width addr));
        if nactive > 0 then begin
          let r =
            Memsys.global_access dev.d_mem ~sm:sm.sm_id ~stats
              (mem_pairs width)
          in
          stats.Stats.gld_requested_bytes <-
            stats.Stats.gld_requested_bytes
            + (nactive * Opcode.bytes_of_width width);
          stats.Stats.gld_transactions <-
            stats.Stats.gld_transactions + r.Memsys.transactions;
          trace_mem dev sm w ~space:Trace.Record.Sp_global ~write:false
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Shared ->
        iter_lanes exec_mask (fun lane ->
            let addr = eff_addr lane in
            reg_set w ~lane (dst1 ())
              (Memory.read w.w_block.b_shared ~width addr));
        if nactive > 0 then begin
          let addrs = fold_lanes exec_mask (fun a l -> eff_addr l :: a) [] in
          let r = Memsys.shared_access dev.d_mem ~sm:sm.sm_id ~stats addrs in
          trace_mem dev sm w ~space:Trace.Record.Sp_shared ~write:false
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Local ->
        let uniform = ref true in
        let addr0 = ref (-1) in
        let frame = frame_bytes w in
        let d = dst1 () in
        iter_lanes exec_mask (fun lane ->
            let addr = eff_addr lane in
            if !addr0 < 0 then addr0 := addr
            else if addr <> !addr0 then uniform := false;
            if addr < 0 || addr >= frame then
              raise (Trap.Memory_fault
                       { space = Opcode.Local; addr; kind = Trap.Out_of_bounds });
            reg_set w ~lane d
              (Memory.read w.w_local ~width ((lane * frame) + addr)));
        if nactive > 0 then begin
          let r =
            if !uniform then begin
              (* Same frame offset in every lane: the interleaved
                 physical addresses form one contiguous run. *)
              let first = Value.ffs exec_mask - 1 in
              let last = Value.flo exec_mask in
              Memsys.contiguous_access dev.d_mem ~sm:sm.sm_id ~stats
                ~first_phys:(local_phys w ~lane:first !addr0)
                ~last_phys:(local_phys w ~lane:last !addr0)
                ~width:4
            end
            else
              Memsys.global_access dev.d_mem ~sm:sm.sm_id ~stats
                (fold_lanes exec_mask
                   (fun a lane -> (local_phys w ~lane (eff_addr lane), 4) :: a)
                   [])
          in
          trace_mem dev sm w ~space:Trace.Record.Sp_local ~write:false
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Param ->
        iter_lanes exec_mask (fun lane ->
            reg_set w ~lane (dst1 ())
              (Memory.read launch.l_params ~width (eff_addr lane)))
      | Opcode.Tex ->
        iter_lanes exec_mask (fun lane ->
            let v, _ = texture_read launch ~width (sv lane (src 0)) in
            reg_set w ~lane (dst1 ()) v);
        latency := cfg.Config.lat_l1)
   | Opcode.ST (space, width) ->
     let ev0 = evaluator (src 2) in
     let ev1 =
       match List.nth_opt i.Instr.srcs 3 with
       | Some s -> evaluator s
       | None -> fun _ -> 0
     in
     let value_src lane k = if k = 0 then ev0 lane else ev1 lane in
     (match space with
      | Opcode.Global ->
        iter_lanes exec_mask (fun lane ->
            let addr = eff_addr lane in
            match width with
            | Opcode.W64 ->
              Memory.write dev.d_global ~width:Opcode.W32 addr
                (value_src lane 0);
              Memory.write dev.d_global ~width:Opcode.W32 (addr + 4)
                (value_src lane 1)
            | _ -> Memory.write dev.d_global ~width addr (value_src lane 0));
        if nactive > 0 then begin
          let r =
            Memsys.global_access dev.d_mem ~sm:sm.sm_id ~stats
              (mem_pairs width)
          in
          stats.Stats.gst_requested_bytes <-
            stats.Stats.gst_requested_bytes
            + (nactive * Opcode.bytes_of_width width);
          stats.Stats.gst_transactions <-
            stats.Stats.gst_transactions + r.Memsys.transactions;
          trace_mem dev sm w ~space:Trace.Record.Sp_global ~write:true
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Shared ->
        iter_lanes exec_mask (fun lane ->
            Memory.write w.w_block.b_shared ~width (eff_addr lane)
              (value_src lane 0));
        if nactive > 0 then begin
          let addrs = fold_lanes exec_mask (fun a l -> eff_addr l :: a) [] in
          let r = Memsys.shared_access dev.d_mem ~sm:sm.sm_id ~stats addrs in
          trace_mem dev sm w ~space:Trace.Record.Sp_shared ~write:true
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Local ->
        let uniform = ref true in
        let addr0 = ref (-1) in
        let frame = frame_bytes w in
        iter_lanes exec_mask (fun lane ->
            let addr = eff_addr lane in
            if !addr0 < 0 then addr0 := addr
            else if addr <> !addr0 then uniform := false;
            if addr < 0 || addr >= frame then
              raise (Trap.Memory_fault
                       { space = Opcode.Local; addr; kind = Trap.Out_of_bounds });
            Memory.write w.w_local ~width ((lane * frame) + addr)
              (value_src lane 0));
        if nactive > 0 then begin
          let r =
            if !uniform then begin
              let first = Value.ffs exec_mask - 1 in
              let last = Value.flo exec_mask in
              Memsys.contiguous_access dev.d_mem ~sm:sm.sm_id ~stats
                ~first_phys:(local_phys w ~lane:first !addr0)
                ~last_phys:(local_phys w ~lane:last !addr0)
                ~width:4
            end
            else
              Memsys.global_access dev.d_mem ~sm:sm.sm_id ~stats
                (fold_lanes exec_mask
                   (fun a lane -> (local_phys w ~lane (eff_addr lane), 4) :: a)
                   [])
          in
          trace_mem dev sm w ~space:Trace.Record.Sp_local ~write:true
            ~width ~lanes:nactive r;
          latency := r.Memsys.latency
        end
      | Opcode.Param | Opcode.Tex ->
        raise (Trap.Memory_fault
                 { space; addr = 0; kind = Trap.Invalid_instruction }))
   | Opcode.ATOM (space, aop, width) | Opcode.RED (space, aop, width) ->
     let has_dst =
       match i.Instr.op with
       | Opcode.ATOM _ -> true
       | _ -> false
     in
     let mem_of_space =
       match space with
       | Opcode.Global -> dev.d_global
       | Opcode.Shared -> w.w_block.b_shared
       | Opcode.Local | Opcode.Param | Opcode.Tex ->
         raise (Trap.Memory_fault
                  { space; addr = 0; kind = Trap.Invalid_instruction })
     in
     iter_lanes exec_mask (fun lane ->
         let addr = eff_addr lane in
         let old = Memory.read mem_of_space ~width addr in
         let operand = sv lane (src 2) in
         let nv =
           match aop with
           | Opcode.A_add ->
             (match width with
              | Opcode.W64 -> old + operand
              | _ -> Value.add old operand)
           | Opcode.A_min -> Value.min_max ~cmp:Opcode.Lt old operand
           | Opcode.A_max -> Value.min_max ~cmp:Opcode.Gt old operand
           | Opcode.A_exch -> operand
           | Opcode.A_cas ->
             let swap = sv lane (src 3) in
             if old = operand then swap else old
           | Opcode.A_and -> old land operand
           | Opcode.A_or -> old lor operand
           | Opcode.A_xor -> old lxor operand
         in
         Memory.write mem_of_space ~width addr nv;
         if has_dst then reg_set w ~lane (dst1 ()) old);
     if nactive > 0 then begin
       let r =
         match space with
         | Opcode.Global ->
           Memsys.atomic_access dev.d_mem ~sm:sm.sm_id ~stats
             (mem_pairs width)
         | _ ->
           let addrs = fold_lanes exec_mask (fun a l -> eff_addr l :: a) [] in
           Memsys.shared_access dev.d_mem ~sm:sm.sm_id ~stats addrs
       in
       let tr_space =
         match space with
         | Opcode.Global -> Trace.Record.Sp_global
         | _ -> Trace.Record.Sp_shared
       in
       trace_mem dev sm w ~space:tr_space ~write:true ~width ~lanes:nactive
         r;
       latency := r.Memsys.latency + cfg.Config.lat_atomic
     end
   | Opcode.TLD width ->
     iter_lanes exec_mask (fun lane ->
         let v, _ = texture_read launch ~width (sv lane (src 0)) in
         match width with
         | Opcode.W64 ->
           (match i.Instr.dsts with
            | [ lo; hi ] ->
              reg_set w ~lane lo (v land Value.mask);
              reg_set w ~lane hi ((v lsr 32) land Value.mask)
            | _ -> invalid_arg "Exec: TLD.64 needs a register pair")
         | _ -> reg_set w ~lane (dst1 ()) v);
     if nactive > 0 then begin
       let pairs =
         fold_lanes exec_mask
           (fun a lane ->
              let _, addr = texture_read launch ~width (sv lane (src 0)) in
              (Memsys.texture_window + addr, Opcode.bytes_of_width width)
              :: a)
           []
       in
       let r = Memsys.global_access dev.d_mem ~sm:sm.sm_id ~stats pairs in
       trace_mem dev sm w ~space:Trace.Record.Sp_texture ~write:false ~width
         ~lanes:nactive r;
       latency := r.Memsys.latency
     end
   | Opcode.MEMBAR -> ()
   | Opcode.VOTE mode ->
     let ballot =
       fold_lanes exec_mask
         (fun acc lane ->
            if sv lane (src 0) <> 0 then acc lor (1 lsl lane) else acc)
         0
     in
     (match mode with
      | Opcode.V_ballot ->
        iter_lanes exec_mask (fun lane -> reg_set w ~lane (dst1 ()) ballot)
      | Opcode.V_any ->
        let r = ballot <> 0 in
        (match i.Instr.pdsts with
         | p :: _ -> iter_lanes exec_mask (fun lane -> pred_set w ~lane p r)
         | [] -> iter_lanes exec_mask (fun lane ->
             reg_set w ~lane (dst1 ()) (if r then 1 else 0)))
      | Opcode.V_all ->
        let r = ballot = exec_mask in
        (match i.Instr.pdsts with
         | p :: _ -> iter_lanes exec_mask (fun lane -> pred_set w ~lane p r)
         | [] -> iter_lanes exec_mask (fun lane ->
             reg_set w ~lane (dst1 ()) (if r then 1 else 0))))
   | Opcode.SHFL mode ->
     (* Read all source values first: dst may alias src. *)
     let values = Array.make warp_size 0 in
     iter_lanes exec_mask (fun lane -> values.(lane) <- sv lane (src 0));
     iter_lanes exec_mask (fun lane ->
         let b = sv lane (src 1) in
         let target =
           match mode with
           | Opcode.S_idx -> b land 31
           | Opcode.S_up -> lane - b
           | Opcode.S_down -> lane + b
           | Opcode.S_bfly -> lane lxor b
         in
         let v =
           if target < 0 || target >= warp_size
              || exec_mask land (1 lsl target) = 0
           then values.(lane)
           else values.(target)
         in
         reg_set w ~lane (dst1 ()) v)
   | Opcode.BRA ->
     let target =
       match i.Instr.target with
       | Some t -> t
       | None -> invalid_arg "Exec: unresolved branch"
     in
     if Instr.is_cond_branch i then begin
       stats.Stats.branches <- stats.Stats.branches + 1;
       (match sm.sm_telemetry with
        | None -> ()
        | Some tm ->
          Telemetry.Hist.observe tm.tm_branch_lanes (popc_mask exec_mask));
       let taken = exec_mask in
       let not_taken = e.e_mask land lnot exec_mask in
       if taken = 0 then next_pc := pc + 1
       else if not_taken = 0 then next_pc := target
       else begin
         (* Divergence: split the warp. *)
         stats.Stats.divergent_branches <- stats.Stats.divergent_branches + 1;
         (match sm.sm_telemetry with
          | None -> ()
          | Some tm ->
            Telemetry.Hist.observe tm.tm_divergent_taken_lanes
              (popc_mask taken));
         let rpc =
           match i.Instr.reconv with
           | Some r -> r
           | None -> -1
         in
         let rest =
           match w.w_stack with
           | _ :: r -> r
           | [] -> []
         in
         let cont =
           if rpc >= 0 then
             [ { e_pc = rpc; e_rpc = e.e_rpc; e_mask = e.e_mask } ]
           else []
         in
         let nt_entry = { e_pc = pc + 1; e_rpc = rpc; e_mask = not_taken } in
         let t_entry = { e_pc = target; e_rpc = rpc; e_mask = taken } in
         w.w_stack <- (t_entry :: nt_entry :: cont) @ rest;
         next_pc := -2 (* stack already updated *)
       end
     end
     else next_pc := target
   | Opcode.CAL ->
     let target =
       match i.Instr.target with
       | Some t -> t
       | None -> invalid_arg "Exec: unresolved call"
     in
     w.w_call_stack <- (pc + 1) :: w.w_call_stack;
     next_pc := target
   | Opcode.RET ->
     (match w.w_call_stack with
      | ret :: rest ->
        w.w_call_stack <- rest;
        next_pc := ret
      | [] ->
        (* RET at kernel top level exits, like PTX. *)
        warp_exit w exec_mask;
        next_pc := (if w.w_stack = [] then -2 else pc + 1))
   | Opcode.EXIT ->
     if exec_mask <> 0 then begin
       warp_exit w exec_mask;
       (* If some lanes remain (guarded EXIT), execution continues. *)
       next_pc := (if w.w_stack = [] then -2 else pc + 1)
     end
   | Opcode.BAR ->
     w.w_status <- W_barrier;
     (* Stamp the arrival cycle: if the barrier releases, each
        released warp's stamp gives its stall duration. The stamp is
        never earlier than the warp's previous ready time, so
        scheduling is unchanged whether or not tracing is on. *)
     w.w_ready_at <- sm.sm_cycle;
     w.w_block.b_arrived <- w.w_block.b_arrived + 1;
     (match sm.sm_tracer with
      | Some c when Trace.Collector.wants c Trace.Record.Warp ->
        Trace.Collector.emit c
          (Trace.Record.make
             ~cycle:(dev.d_trace_base + sm.sm_cycle)
             ~sm:sm.sm_id ~warp:(warp_uid w)
             (Trace.Record.Warp_barrier
                { pc; arrived = w.w_block.b_arrived }))
      | _ -> ());
     release_barrier_if_ready w.w_block;
     (match sm.sm_telemetry with
      | Some tm when w.w_status = W_ready ->
        (* The barrier released: every warp of the block now ready was
           waiting since its own arrival stamp (0 for the releaser). *)
        Array.iter
          (fun w' ->
             if w'.w_status = W_ready then
               Telemetry.Hist.observe tm.tm_barrier_wait
                 (sm.sm_cycle - w'.w_ready_at))
          w.w_block.b_warps
      | _ -> ());
     (match sm.sm_tracer with
      | Some c
        when w.w_status = W_ready
             && Trace.Collector.wants c Trace.Record.Warp ->
        (* The barrier released in this step: every warp of the block
           now ready was stalled since its own arrival stamp. *)
        Array.iter
          (fun w' ->
             if w'.w_status = W_ready && sm.sm_cycle > w'.w_ready_at then
               Trace.Collector.emit c
                 (Trace.Record.make
                    ~cycle:(dev.d_trace_base + w'.w_ready_at)
                    ~sm:sm.sm_id ~warp:(warp_uid w')
                    (Trace.Record.Warp_stall
                       { reason = Trace.Record.Stall_barrier;
                         cycles = sm.sm_cycle - w'.w_ready_at })))
          w.w_block.b_warps
      | _ -> ())
   | Opcode.NOP -> ()
   | Opcode.HCALL id ->
     stats.Stats.hcalls <- stats.Stats.hcalls + 1;
     latency := 2 * cfg.Config.lat_alu;
     (match dev.d_hcall with
      | None ->
        raise (Trap.Device_assert
                 "HCALL executed with no SASSI runtime installed")
      | Some hook ->
        w.w_sassi_scratch <- 0;
        hook
          { h_launch = launch;
            h_sm = sm;
            h_warp = w;
            h_handler = id;
            h_pc = pc;
            h_mask = exec_mask };
        (* Device-API operations performed by the handler charged
           their cycle cost into the warp's scratch accumulator. *)
        latency := !latency + w.w_sassi_scratch;
        w.w_sassi_scratch <- 0));
  (* Advance the PC unless control flow already rewrote the stack. *)
  (match !next_pc with
   | -2 -> ()
   | np ->
     (match w.w_stack with
      | entry :: _ when entry == e -> e.e_pc <- np
      | _ -> ()));
  (match sm.sm_tracer with
   | None -> ()
   | Some c ->
     if Trace.Collector.wants c Trace.Record.Warp then begin
       let cycle = dev.d_trace_base + sm.sm_cycle in
       let uid = warp_uid w in
       Trace.Collector.emit c
         (Trace.Record.make ~cycle ~sm:sm.sm_id ~warp:uid
            (Trace.Record.Warp_issue
               { pc;
                 op = Opcode.to_string i.Instr.op;
                 active = nactive }));
       (* Anything beyond the baseline ALU latency keeps the warp out
          of the issue pool: record it as a stall span. *)
       if !latency > cfg.Config.lat_alu then
         Trace.Collector.emit c
           (Trace.Record.make ~cycle ~sm:sm.sm_id ~warp:uid
              (Trace.Record.Warp_stall
                 { reason =
                     (if Opcode.is_mem i.Instr.op then
                        Trace.Record.Stall_memory
                      else Trace.Record.Stall_exec);
                   cycles = !latency }))
     end);
  (* PC sampling: remember the latency class of this instruction so
     a sample taken while the warp waits out [latency] can attribute
     the stall (memory vs. execution dependency). Single branch when
     no sampler is installed. *)
  (match sm.sm_sampler with
   | None -> ()
   | Some _ ->
     w.w_stall_code <- (if Opcode.is_mem i.Instr.op then 1 else 0));
  if w.w_status = W_ready then
    w.w_ready_at <- sm.sm_cycle + !latency
