type t = {
  cfg : Config.t;
  l1s : Cache.t array;
  l2 : Cache.t;
  (* Activity-trace sink for L1/L2 probe events. The interpreter
     stamps the context (cycle, warp) before issuing accesses; both
     stay untouched while tracing is off. *)
  mutable tr_sink : Trace.Collector.t option;
  mutable tr_cycle : int;
  mutable tr_warp : int;
  (* Telemetry histograms for request latency and transactions per
     coalesced access; [None] keeps both observation sites on their
     single-branch fast path. *)
  mutable tm_sink : tm_sink option;
}

and tm_sink = {
  tm_latency : Telemetry.Hist.t;
  tm_transactions : Telemetry.Hist.t;
}

type result = {
  transactions : int;
  latency : int;
}

let global_window = 0

let local_window = 1 lsl 40

let texture_window = 1 lsl 41

let create (cfg : Config.t) =
  { cfg;
    l1s =
      Array.init cfg.Config.num_sms (fun i ->
          Cache.create
            ~name:(Printf.sprintf "L1[%d]" i)
            ~size_bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
            ~line_bytes:cfg.Config.line_bytes);
    l2 =
      Cache.create ~name:"L2" ~size_bytes:cfg.Config.l2_bytes
        ~assoc:cfg.Config.l2_assoc ~line_bytes:cfg.Config.line_bytes;
    tr_sink = None;
    tr_cycle = 0;
    tr_warp = -1;
    tm_sink = None }

let set_trace_sink t sink = t.tr_sink <- sink

let set_telemetry_sink t sink = t.tm_sink <- sink

let observe_access t (r : result) =
  match t.tm_sink with
  | None -> ()
  | Some tm ->
    Telemetry.Hist.observe tm.tm_latency r.latency;
    Telemetry.Hist.observe tm.tm_transactions r.transactions

let set_trace_ctx t ~cycle ~warp =
  t.tr_cycle <- cycle;
  t.tr_warp <- warp

let trace_probe t ~sm ~level ~hit =
  match t.tr_sink with
  | None -> ()
  | Some c ->
    Trace.Collector.emit c
      (Trace.Record.make ~cycle:t.tr_cycle ~sm ~warp:t.tr_warp
         (Trace.Record.Cache_access { level; hit }))

let coalesce ~line_bytes pairs =
  (* A warp contributes at most 32 accesses, so a small-list dedup
     beats a hash table by a wide margin on this hot path. *)
  let lines = ref [] in
  List.iter
    (fun (addr, width) ->
       let first = addr / line_bytes in
       let last = (addr + width - 1) / line_bytes in
       for l = first to last do
         if not (List.mem l !lines) then lines := l :: !lines
       done)
    pairs;
  List.sort Int.compare !lines

let line_latency t ~sm line_addr stats =
  let cfg = t.cfg in
  match Cache.access t.l1s.(sm) line_addr with
  | Cache.Hit ->
    stats.Stats.l1_hits <- stats.Stats.l1_hits + 1;
    trace_probe t ~sm ~level:Trace.Record.L1 ~hit:true;
    cfg.Config.lat_l1
  | Cache.Miss ->
    stats.Stats.l1_misses <- stats.Stats.l1_misses + 1;
    trace_probe t ~sm ~level:Trace.Record.L1 ~hit:false;
    (match Cache.access t.l2 line_addr with
     | Cache.Hit ->
       stats.Stats.l2_hits <- stats.Stats.l2_hits + 1;
       trace_probe t ~sm ~level:Trace.Record.L2 ~hit:true;
       cfg.Config.lat_l2
     | Cache.Miss ->
       stats.Stats.l2_misses <- stats.Stats.l2_misses + 1;
       trace_probe t ~sm ~level:Trace.Record.L2 ~hit:false;
       cfg.Config.lat_dram)

let global_access t ~sm ~stats pairs =
  let cfg = t.cfg in
  let lines = coalesce ~line_bytes:cfg.Config.line_bytes pairs in
  let n = List.length lines in
  stats.Stats.global_transactions <- stats.Stats.global_transactions + n;
  let worst =
    List.fold_left
      (fun acc l ->
         max acc (line_latency t ~sm (l * cfg.Config.line_bytes) stats))
      0 lines
  in
  (* Additional transactions beyond the first serialize at the L1. *)
  let r = { transactions = n; latency = worst + (max 0 (n - 1)) * 2 } in
  observe_access t r;
  r

(* Local-memory accesses at a uniform frame offset touch the
   contiguous physical range [first_phys, last_phys + width): the
   per-lane interleaving guarantees perfect coalescing, so the line
   set is computed arithmetically instead of through the generic
   coalescer. This is the hottest path under instrumentation (spill
   and fill traffic of injected call sequences). *)
let contiguous_access t ~sm ~stats ~first_phys ~last_phys ~width =
  let cfg = t.cfg in
  let lb = cfg.Config.line_bytes in
  let first = first_phys / lb in
  let last = (last_phys + width - 1) / lb in
  let n = last - first + 1 in
  stats.Stats.global_transactions <- stats.Stats.global_transactions + n;
  let worst = ref 0 in
  for l = first to last do
    let lat = line_latency t ~sm (l * lb) stats in
    if lat > !worst then worst := lat
  done;
  let r = { transactions = n; latency = !worst + ((n - 1) * 2) } in
  observe_access t r;
  r

let shared_access t ~stats addrs =
  let cfg = t.cfg in
  (* 32 banks, 4-byte wide; same-word accesses broadcast. *)
  let per_bank = Hashtbl.create 32 in
  List.iter
    (fun addr ->
       let word = addr / 4 in
       let bank = word mod 32 in
       let words =
         match Hashtbl.find_opt per_bank bank with
         | None -> []
         | Some ws -> ws
       in
       if not (List.mem word words) then
         Hashtbl.replace per_bank bank (word :: words))
    addrs;
  let conflict =
    Hashtbl.fold (fun _ ws acc -> max acc (List.length ws)) per_bank 1
  in
  stats.Stats.shared_accesses <- stats.Stats.shared_accesses + 1;
  stats.Stats.shared_conflicts <- stats.Stats.shared_conflicts + (conflict - 1);
  { transactions = conflict;
    latency = cfg.Config.lat_shared * conflict }

let atomic_access t ~sm ~stats pairs =
  let cfg = t.cfg in
  let base = global_access t ~sm ~stats pairs in
  let unique_addrs =
    List.sort_uniq Int.compare (List.map fst pairs) |> List.length
  in
  { transactions = base.transactions;
    latency = base.latency + (cfg.Config.lat_atomic * unique_addrs) }

let l1_stats t ~sm = (Cache.hits t.l1s.(sm), Cache.misses t.l1s.(sm))

let l2_stats t = (Cache.hits t.l2, Cache.misses t.l2)

let invalidate t =
  Array.iter Cache.invalidate_all t.l1s;
  Cache.invalidate_all t.l2
