(* Per-SM observation slot: trace/telemetry context and sinks, plus
   the shared-memory bank-conflict scratch. Keeping all of it per-SM
   (instead of ambient on [t]) is what lets SMs run on separate
   domains without clobbering each other's stamps, and what makes the
   hot shared-access path allocation-free. *)
type slot = {
  mutable sl_sink : Trace.Collector.t option;
  mutable sl_cycle : int;
  mutable sl_warp : int;
  mutable sl_tm : tm_sink option;
  (* shared_access scratch: unique words seen this call (a warp has at
     most 32 lanes) and per-bank unique-word counts. Both are reset by
     replaying the unique-word list, so no 32-wide clear is needed
     between calls and nothing is allocated. *)
  sa_words : int array;
  sa_bank_count : int array;
}

and tm_sink = {
  tm_latency : Telemetry.Hist.t;
  tm_transactions : Telemetry.Hist.t;
}

type t = {
  cfg : Config.t;
  l1s : Cache.t array;
  (* Partitioned L2: the capacity is split into [num_sms] equal
     slices and SM [i] only ever probes slice [i]. Applied in both
     sequential and sharded modes so the two are bit-identical (see
     DESIGN: the old shared-L2 sequential semantics, where SM0 fully
     warms the cache before SM1 starts, was an artifact of the
     sequential loop, not fidelity). *)
  l2s : Cache.t array;
  slots : slot array;
  (* Device-level default sinks, mirrored into every slot; the
     scheduler overrides slots with per-SM sinks while sharding and
     restores these afterwards. *)
  mutable tr_sink : Trace.Collector.t option;
  mutable tm_sink : tm_sink option;
}

type result = {
  transactions : int;
  latency : int;
}

let global_window = 0

let local_window = 1 lsl 40

let texture_window = 1 lsl 41

let create (cfg : Config.t) =
  let num_sms = cfg.Config.num_sms in
  { cfg;
    l1s =
      Array.init num_sms (fun i ->
          Cache.create
            ~name:(Printf.sprintf "L1[%d]" i)
            ~size_bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
            ~line_bytes:cfg.Config.line_bytes);
    l2s =
      Array.init num_sms (fun i ->
          Cache.create
            ~name:(Printf.sprintf "L2[%d]" i)
            ~size_bytes:(cfg.Config.l2_bytes / num_sms)
            ~assoc:cfg.Config.l2_assoc ~line_bytes:cfg.Config.line_bytes);
    slots =
      Array.init num_sms (fun _ ->
          { sl_sink = None;
            sl_cycle = 0;
            sl_warp = -1;
            sl_tm = None;
            sa_words = Array.make 32 0;
            sa_bank_count = Array.make 32 0 });
    tr_sink = None;
    tm_sink = None }

let set_trace_sink t sink =
  t.tr_sink <- sink;
  Array.iter (fun sl -> sl.sl_sink <- sink) t.slots

let set_telemetry_sink t sink =
  t.tm_sink <- sink;
  Array.iter (fun sl -> sl.sl_tm <- sink) t.slots

let override_slot_sinks t ~sm ~trace ~telemetry =
  let sl = t.slots.(sm) in
  sl.sl_sink <- trace;
  sl.sl_tm <- telemetry

let restore_slot_sinks t =
  Array.iter
    (fun sl ->
      sl.sl_sink <- t.tr_sink;
      sl.sl_tm <- t.tm_sink)
    t.slots

let observe_access t ~sm (r : result) =
  match t.slots.(sm).sl_tm with
  | None -> ()
  | Some tm ->
    Telemetry.Hist.observe tm.tm_latency r.latency;
    Telemetry.Hist.observe tm.tm_transactions r.transactions

let set_trace_ctx t ~sm ~cycle ~warp =
  let sl = t.slots.(sm) in
  sl.sl_cycle <- cycle;
  sl.sl_warp <- warp

let trace_probe t ~sm ~level ~hit =
  let sl = t.slots.(sm) in
  match sl.sl_sink with
  | None -> ()
  | Some c ->
    Trace.Collector.emit c
      (Trace.Record.make ~cycle:sl.sl_cycle ~sm ~warp:sl.sl_warp
         (Trace.Record.Cache_access { level; hit }))

let coalesce ~line_bytes pairs =
  (* A warp contributes at most 32 accesses, so a small-list dedup
     beats a hash table by a wide margin on this hot path. *)
  let lines = ref [] in
  List.iter
    (fun (addr, width) ->
       let first = addr / line_bytes in
       let last = (addr + width - 1) / line_bytes in
       for l = first to last do
         if not (List.mem l !lines) then lines := l :: !lines
       done)
    pairs;
  List.sort Int.compare !lines

let line_latency t ~sm line_addr stats =
  let cfg = t.cfg in
  match Cache.access t.l1s.(sm) line_addr with
  | Cache.Hit ->
    stats.Stats.l1_hits <- stats.Stats.l1_hits + 1;
    trace_probe t ~sm ~level:Trace.Record.L1 ~hit:true;
    cfg.Config.lat_l1
  | Cache.Miss ->
    stats.Stats.l1_misses <- stats.Stats.l1_misses + 1;
    trace_probe t ~sm ~level:Trace.Record.L1 ~hit:false;
    (match Cache.access t.l2s.(sm) line_addr with
     | Cache.Hit ->
       stats.Stats.l2_hits <- stats.Stats.l2_hits + 1;
       trace_probe t ~sm ~level:Trace.Record.L2 ~hit:true;
       cfg.Config.lat_l2
     | Cache.Miss ->
       stats.Stats.l2_misses <- stats.Stats.l2_misses + 1;
       trace_probe t ~sm ~level:Trace.Record.L2 ~hit:false;
       cfg.Config.lat_dram)

let global_access t ~sm ~stats pairs =
  let cfg = t.cfg in
  let lines = coalesce ~line_bytes:cfg.Config.line_bytes pairs in
  let n = List.length lines in
  stats.Stats.global_transactions <- stats.Stats.global_transactions + n;
  let worst =
    List.fold_left
      (fun acc l ->
         max acc (line_latency t ~sm (l * cfg.Config.line_bytes) stats))
      0 lines
  in
  (* Additional transactions beyond the first serialize at the L1. *)
  let r = { transactions = n; latency = worst + (max 0 (n - 1)) * 2 } in
  observe_access t ~sm r;
  r

(* Local-memory accesses at a uniform frame offset touch the
   contiguous physical range [first_phys, last_phys + width): the
   per-lane interleaving guarantees perfect coalescing, so the line
   set is computed arithmetically instead of through the generic
   coalescer. This is the hottest path under instrumentation (spill
   and fill traffic of injected call sequences). *)
let contiguous_access t ~sm ~stats ~first_phys ~last_phys ~width =
  let cfg = t.cfg in
  let lb = cfg.Config.line_bytes in
  let first = first_phys / lb in
  let last = (last_phys + width - 1) / lb in
  let n = last - first + 1 in
  stats.Stats.global_transactions <- stats.Stats.global_transactions + n;
  let worst = ref 0 in
  for l = first to last do
    let lat = line_latency t ~sm (l * lb) stats in
    if lat > !worst then worst := lat
  done;
  let r = { transactions = n; latency = !worst + ((n - 1) * 2) } in
  observe_access t ~sm r;
  r

let shared_access t ~sm ~stats addrs =
  let cfg = t.cfg in
  let sl = t.slots.(sm) in
  (* 32 banks, 4-byte wide; same-word accesses broadcast. The scratch
     arrays live in the per-SM slot, so this path allocates nothing
     and is safe under sharding. Bank counts are left at zero between
     calls (the reset loop below), so no up-front clear is needed. *)
  let n_words = ref 0 in
  List.iter
    (fun addr ->
       let word = addr / 4 in
       let seen = ref false in
       for i = 0 to !n_words - 1 do
         if sl.sa_words.(i) = word then seen := true
       done;
       if not !seen then begin
         sl.sa_words.(!n_words) <- word;
         incr n_words;
         let bank = word mod 32 in
         sl.sa_bank_count.(bank) <- sl.sa_bank_count.(bank) + 1
       end)
    addrs;
  let conflict = ref 1 in
  for i = 0 to !n_words - 1 do
    let bank = sl.sa_words.(i) mod 32 in
    if sl.sa_bank_count.(bank) > !conflict then
      conflict := sl.sa_bank_count.(bank);
    sl.sa_bank_count.(bank) <- 0
  done;
  let conflict = !conflict in
  stats.Stats.shared_accesses <- stats.Stats.shared_accesses + 1;
  stats.Stats.shared_conflicts <- stats.Stats.shared_conflicts + (conflict - 1);
  { transactions = conflict;
    latency = cfg.Config.lat_shared * conflict }

let atomic_access t ~sm ~stats pairs =
  let cfg = t.cfg in
  let base = global_access t ~sm ~stats pairs in
  let unique_addrs =
    List.sort_uniq Int.compare (List.map fst pairs) |> List.length
  in
  { transactions = base.transactions;
    latency = base.latency + (cfg.Config.lat_atomic * unique_addrs) }

let l1_stats t ~sm = (Cache.hits t.l1s.(sm), Cache.misses t.l1s.(sm))

let l2_stats t =
  Array.fold_left
    (fun (h, m) c -> (h + Cache.hits c, m + Cache.misses c))
    (0, 0) t.l2s

let invalidate t =
  Array.iter Cache.invalidate_all t.l1s;
  Array.iter Cache.invalidate_all t.l2s
