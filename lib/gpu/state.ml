type wstatus =
  | W_ready
  | W_barrier
  | W_done

type stack_entry = {
  mutable e_pc : int;
  e_rpc : int;
  mutable e_mask : int;
}

type warp = {
  w_id : int;
  w_block : block;
  w_regs : int array;
  w_preds : bool array;
  w_local : Memory.t;
  mutable w_stack : stack_entry list;
  mutable w_call_stack : int list;
  mutable w_status : wstatus;
  mutable w_ready_at : int;
  mutable w_stall_code : int;
  mutable w_sassi_scratch : int;
}

and block = {
  b_x : int;
  b_y : int;
  b_flat : int;
  b_shared : Memory.t;
  b_launch : launch;
  mutable b_warps : warp array;
  mutable b_arrived : int;
  mutable b_alive : int;
}

and sm = {
  sm_id : int;
  sm_launch : launch;
  mutable sm_cycle : int;
  mutable sm_issued : int;
  mutable sm_warps : warp array;
  mutable sm_rr : int;
  (* Per-SM observation context. In sequential mode these alias the
     launch/device-level objects; under device sharding each SM gets
     private instances, merged back in [sm_id] order at launch end so
     stats and sink contents are bit-identical to the sequential
     path. The interpreter and scheduler only ever go through these,
     never through [l_stats]/[d_tracer]/[d_telemetry]/[d_sampler]
     directly. *)
  sm_stats : Stats.t;
  sm_tracer : Trace.Collector.t option;
  sm_telemetry : telemetry option;
  sm_sampler : sampler option;
}

and launch = {
  l_device : device;
  l_kernel : Sass.Program.kernel;
  l_grid_x : int;
  l_grid_y : int;
  l_block_x : int;
  l_block_y : int;
  l_params : Memory.t;
  l_stats : Stats.t;
  l_id : int;
  l_invocation : int;
}

and device = {
  d_cfg : Config.t;
  d_global : Memory.t;
  d_mem : Memsys.t;
  mutable d_alloc : int;
  mutable d_transform : transform option;
  mutable d_transform_gen : int;
  d_kernel_cache : (string * int, Sass.Program.kernel) Hashtbl.t;
  mutable d_launch_cbs : (int * (launch -> unit)) list;
  mutable d_exit_cbs : (int * (launch -> unit)) list;
  mutable d_cb_next : int;
  mutable d_hcall : (hcall_ctx -> unit) option;
  mutable d_launch_count : int;
  d_invocations : (string, int) Hashtbl.t;
  mutable d_texture : (int * int) option;
  mutable d_host_access : (addr:int -> bytes:int -> write:bool -> unit) option;
  mutable d_tracer : Trace.Collector.t option;
  mutable d_trace_base : int;
  mutable d_sampler : sampler option;
  mutable d_telemetry : telemetry option;
  (* Device sharding: number of domains SM simulation may spread
     over (1 = sequential), and how many launches were forced down
     the sequential path by the eligibility scan (cross-block atomics
     or SASSI handlers). The fallback counter moves on every launch
     regardless of [d_domains], so telemetry exports stay
     byte-identical across domain counts. *)
  mutable d_domains : int;
  mutable d_sharding_fallbacks : int;
}

and transform = Sass.Program.kernel -> Sass.Program.kernel

and sampler = {
  sp_period : int;
  mutable sp_credit : int;
  sp_hit : sm -> unit;
}

and telemetry = {
  tm_interval : int;
  tm_mem_latency : Telemetry.Hist.t;
  tm_mem_transactions : Telemetry.Hist.t;
  tm_branch_lanes : Telemetry.Hist.t;
  tm_divergent_taken_lanes : Telemetry.Hist.t;
  tm_barrier_wait : Telemetry.Hist.t;
  tm_handler_cycles : Telemetry.Hist.t;
  tm_handler_sites : (int, int ref) Hashtbl.t;
  tm_series : Telemetry.Series.t;
  mutable tm_next_sample : int;
  tm_base : tm_snapshot;
}

and tm_snapshot = {
  mutable ts_cycle : int;
  mutable ts_issued : int;
  mutable ts_l1_hits : int;
  mutable ts_l1_misses : int;
  mutable ts_l2_hits : int;
  mutable ts_l2_misses : int;
}

and hcall_ctx = {
  h_launch : launch;
  h_sm : sm;
  h_warp : warp;
  h_handler : int;
  h_pc : int;
  h_mask : int;
}

let warp_size = 32

let full_mask = 0xFFFFFFFF

let reg_get w ~lane r =
  match r with
  | Sass.Reg.RZ -> 0
  | Sass.Reg.R i -> w.w_regs.((lane lsl 8) + i)

let reg_set w ~lane r v =
  match r with
  | Sass.Reg.RZ -> ()
  | Sass.Reg.R i -> w.w_regs.((lane lsl 8) + i) <- v land Value.mask

let pred_get w ~lane p =
  match p with
  | Sass.Pred.PT -> true
  | Sass.Pred.P i -> w.w_preds.((lane * 7) + i)

let pred_set w ~lane p v =
  match p with
  | Sass.Pred.PT -> ()
  | Sass.Pred.P i -> w.w_preds.((lane * 7) + i) <- v

let guard_passes w ~lane (g : Sass.Pred.guard) =
  let v = pred_get w ~lane g.Sass.Pred.pred in
  if g.Sass.Pred.negated then not v else v

let tos w =
  match w.w_stack with
  | [] -> invalid_arg "State.tos: warp has exited"
  | e :: _ -> e

let active_mask w =
  match w.w_stack with
  | [] -> 0
  | e :: _ -> e.e_mask

let lanes_of_mask mask =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 31 []

let active_lanes w = lanes_of_mask (active_mask w)

let popc_mask m = Value.popc m

let lane_linear_tid w lane = (w.w_id * warp_size) + lane

(* Launch-unique warp id: warps of concurrently resident blocks would
   otherwise collide on [w_id] in activity records. *)
let warp_uid w =
  let l = w.w_block.b_launch in
  let wpb = (l.l_block_x * l.l_block_y + warp_size - 1) / warp_size in
  (w.w_block.b_flat * wpb) + w.w_id

let lane_in_block w lane =
  let bl = w.w_block.b_launch in
  lane_linear_tid w lane < bl.l_block_x * bl.l_block_y

let initial_mask ~block_threads ~warp_id =
  let base = warp_id * warp_size in
  let live = min warp_size (max 0 (block_threads - base)) in
  if live >= 32 then full_mask else (1 lsl live) - 1

let tid_x w ~lane =
  let l = w.w_block.b_launch in
  lane_linear_tid w lane mod l.l_block_x

let tid_y w ~lane =
  let l = w.w_block.b_launch in
  lane_linear_tid w lane / l.l_block_x

let global_tid w ~lane =
  let l = w.w_block.b_launch in
  let threads_per_block = l.l_block_x * l.l_block_y in
  (w.w_block.b_flat * threads_per_block) + lane_linear_tid w lane

let local_read w ~lane ~addr =
  let frame = w.w_block.b_launch.l_kernel.Sass.Program.frame_bytes in
  Memory.read w.w_local ~width:Sass.Opcode.W32 ((lane * frame) + addr)

let local_write w ~lane ~addr v =
  let frame = w.w_block.b_launch.l_kernel.Sass.Program.frame_bytes in
  Memory.write w.w_local ~width:Sass.Opcode.W32 ((lane * frame) + addr) v
