(** Per-launch performance counters. Warp-level counts count one per
    issued warp instruction; thread-level counts weight by the number
    of active lanes. *)

type t = {
  mutable cycles : int;  (** kernel time: max cycle over SMs *)
  mutable warp_instrs : int;
  mutable thread_instrs : int;
  mutable mem_instrs : int;
  mutable ctrl_instrs : int;
  mutable sync_instrs : int;
  mutable numeric_instrs : int;
  mutable texture_instrs : int;
  mutable spill_instrs : int;
  mutable branches : int;  (** conditional branches executed (warp-level) *)
  mutable divergent_branches : int;  (** machine-observed warp splits *)
  mutable global_transactions : int;
  mutable gld_requested_bytes : int;
      (** bytes requested by global-space loads (lanes x width) *)
  mutable gld_transactions : int;
      (** cache-line transactions serving global-space loads *)
  mutable gst_requested_bytes : int;  (** as above, for stores *)
  mutable gst_transactions : int;
  mutable shared_conflicts : int;  (** extra cycles lost to bank conflicts *)
  mutable shared_accesses : int;
      (** shared-space warp accesses routed through the bank model
          (loads, stores, atomics); the denominator for the average
          bank-conflict degree *)
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable resident_warp_cycles : int;
      (** sum over SM waves of resident warps x wave cycles; the
          numerator of achieved occupancy *)
  mutable sm_active_cycles : int;
      (** sum of per-SM cycle counts over SMs that ran blocks (cycles
          itself is the max, i.e. the kernel time) *)
  mutable handler_ops : int;  (** device-API operations charged by handlers *)
  mutable handler_cycles : int;
  mutable hcalls : int;  (** handler invocations *)
}

val create : unit -> t

val to_assoc : t -> (string * int) list
(** All counters as (name, value) pairs, in declaration order. The
    single source of truth for counter names: {!pp}, [--stats-json]
    and the {!Prof.Metrics} engine all go through it. *)

val reset : t -> unit

val accumulate : into:t -> t -> unit
(** Adds all counters of the second argument into [into]; [cycles]
    also accumulates (total device time across launches). *)

val merge : into:t -> t -> unit
(** Reduce the second argument into [into] for an intra-launch
    per-SM merge: [cycles] takes the max (SMs run concurrently; the
    kernel time is the slowest SM), every other counter sums. Driven
    by {!to_assoc} plus a name-indexed setter table, so a counter
    present in the record but missing from either list raises
    [Invalid_argument] instead of being silently dropped. *)

val count_instr : t -> Sass.Opcode.t -> active_lanes:int -> unit
(** Classify and count one issued warp instruction. *)

val pp : Format.formatter -> t -> unit
