(** Mutable machine state: warps, thread blocks, SMs, launches, and
    the device. Types are concrete because the interpreter
    ({!Exec}), the scheduler ({!Scheduler}), the device API
    ({!Device}) and the SASSI runtime all manipulate them directly. *)

type wstatus =
  | W_ready
  | W_barrier
  | W_done

(** One entry of the PDOM divergence stack. The top entry is the
    warp's current execution state; [e_rpc] is the reconvergence PC at
    which the entry pops ([-1]: only at exit). *)
type stack_entry = {
  mutable e_pc : int;
  e_rpc : int;
  mutable e_mask : int;
}

type warp = {
  w_id : int;  (** warp index within its block *)
  w_block : block;
  w_regs : int array;  (** 32 lanes x 256 registers *)
  w_preds : bool array;  (** 32 lanes x 7 predicates *)
  w_local : Memory.t;  (** per-thread stack frames, lane-contiguous *)
  mutable w_stack : stack_entry list;  (** head = top of stack *)
  mutable w_call_stack : int list;  (** warp-uniform return PCs *)
  mutable w_status : wstatus;
  mutable w_ready_at : int;
  mutable w_stall_code : int;
      (** latency class of the last issued instruction (0 = execution
          dependency, 1 = memory dependency); maintained only while a
          PC sampler is installed, read by stall attribution *)
  mutable w_sassi_scratch : int;
      (** per-warp scratch used by instrumentation runtimes *)
}

and block = {
  b_x : int;
  b_y : int;
  b_flat : int;
  b_shared : Memory.t;
  b_launch : launch;
  mutable b_warps : warp array;
  mutable b_arrived : int;  (** warps waiting at the barrier *)
  mutable b_alive : int;  (** warps not yet exited *)
}

and sm = {
  sm_id : int;
  sm_launch : launch;
  mutable sm_cycle : int;
  mutable sm_issued : int;
  mutable sm_warps : warp array;  (** resident warps *)
  mutable sm_rr : int;  (** round-robin scheduling pointer *)
  sm_stats : Stats.t;
      (** the SM's statistics accumulator. Sequential mode: aliases
          [l_stats]. Sharded mode: private, reduced into [l_stats]
          via {!Stats.merge} in [sm_id] order at launch end. The
          interpreter writes counters only through this field. *)
  sm_tracer : Trace.Collector.t option;
      (** activity-record sink for this SM (aliases [d_tracer]
          sequentially; private lossless buffer under sharding) *)
  sm_telemetry : telemetry option;
      (** telemetry sink for this SM (aliases [d_telemetry]
          sequentially; private clone under sharding) *)
  sm_sampler : sampler option;
      (** PC-sampling credit for this SM (aliases [d_sampler]
          sequentially; private credit, shared hit hook under
          sharding) *)
}

and launch = {
  l_device : device;
  l_kernel : Sass.Program.kernel;
  l_grid_x : int;
  l_grid_y : int;
  l_block_x : int;
  l_block_y : int;
  l_params : Memory.t;  (** constant bank c[0x0] *)
  l_stats : Stats.t;
  l_id : int;  (** global launch sequence number *)
  l_invocation : int;  (** per-kernel-name invocation count *)
}

and device = {
  d_cfg : Config.t;
  d_global : Memory.t;
  d_mem : Memsys.t;
  mutable d_alloc : int;
  mutable d_transform : transform option;
  mutable d_transform_gen : int;
  d_kernel_cache : (string * int, Sass.Program.kernel) Hashtbl.t;
  mutable d_launch_cbs : (int * (launch -> unit)) list;
  mutable d_exit_cbs : (int * (launch -> unit)) list;
  mutable d_cb_next : int;
  mutable d_hcall : (hcall_ctx -> unit) option;
  mutable d_launch_count : int;
  d_invocations : (string, int) Hashtbl.t;
  mutable d_texture : (int * int) option;  (** bound (base, bytes) *)
  mutable d_host_access : (addr:int -> bytes:int -> write:bool -> unit) option;
      (** observer of host-side global-memory accesses (the memcpy
          traffic), for heterogeneous CPU+GPU analyses *)
  mutable d_tracer : Trace.Collector.t option;
      (** activity-record collector; [None] keeps every emission site
          on its single-branch fast path *)
  mutable d_trace_base : int;
      (** cycle offset of the current launch on the device-wide trace
          timeline (accumulated cycles of earlier launches) *)
  mutable d_sampler : sampler option;
      (** PC-sampling hook; [None] keeps the scheduler's sampling site
          on its single-branch fast path *)
  mutable d_telemetry : telemetry option;
      (** metrics sink; [None] keeps every histogram and series
          sampling site on its single-branch fast path *)
  mutable d_domains : int;
      (** domains SM simulation may spread over; 1 = sequential *)
  mutable d_sharding_fallbacks : int;
      (** launches the eligibility scan forced down the sequential
          path (cross-block atomics or SASSI handlers). Counted on
          every launch regardless of [d_domains], so telemetry
          exports stay byte-identical across domain counts. *)
}

and transform = Sass.Program.kernel -> Sass.Program.kernel

(** Statistical PC sampler installed on a device. The scheduler
    spends one credit per issue slot (idle cycles spend
    [issue_width] each) and calls [sp_hit] with the current SM every
    time the credit runs out, then rearms with [sp_period]. The hook
    must only observe state — perturbing the simulation would break
    the profiled-equals-unprofiled invariant. *)
and sampler = {
  sp_period : int;
  mutable sp_credit : int;
  sp_hit : sm -> unit;
}

(** Telemetry sink installed on a device (see {!Cupti.Telemetry}).
    Histograms are observed directly from the hot paths (memory
    system, branch unit, barrier release, SASSI handler trap); the
    series sampler snapshots machine gauges every [tm_interval]
    cycles of each SM. Like the tracer and the PC sampler, the sink
    must only observe — installed telemetry leaves {!Stats}
    bit-identical. *)
and telemetry = {
  tm_interval : int;  (** cycles between series samples *)
  tm_mem_latency : Telemetry.Hist.t;
      (** per-warp-request memory latency, cycles *)
  tm_mem_transactions : Telemetry.Hist.t;
      (** cache-line transactions per coalesced access *)
  tm_branch_lanes : Telemetry.Hist.t;
      (** active lanes at each executed conditional branch *)
  tm_divergent_taken_lanes : Telemetry.Hist.t;
      (** lanes taking the branch at each divergent split *)
  tm_barrier_wait : Telemetry.Hist.t;
      (** cycles each warp waited at a released barrier *)
  tm_handler_cycles : Telemetry.Hist.t;
      (** device-API cycles charged per SASSI handler invocation *)
  tm_handler_sites : (int, int ref) Hashtbl.t;
      (** invocation count per instrumentation site id *)
  tm_series : Telemetry.Series.t;
  mutable tm_next_sample : int;  (** next sm_cycle to sample at *)
  tm_base : tm_snapshot;  (** stat values at the last sample *)
}

(** Cumulative-counter snapshot backing the series gauges: gauges are
    deltas of {!Stats} counters over one sampling interval. *)
and tm_snapshot = {
  mutable ts_cycle : int;
  mutable ts_issued : int;
  mutable ts_l1_hits : int;
  mutable ts_l1_misses : int;
  mutable ts_l2_hits : int;
  mutable ts_l2_misses : int;
}

(** Context passed to the instrumentation-handler trap on [HCALL]. *)
and hcall_ctx = {
  h_launch : launch;
  h_sm : sm;
  h_warp : warp;
  h_handler : int;
  h_pc : int;  (** PC of the [HCALL] instruction *)
  h_mask : int;  (** active mask at the call *)
}

val warp_size : int

val full_mask : int

(** {1 Register file access} *)

val reg_get : warp -> lane:int -> Sass.Reg.t -> int

val reg_set : warp -> lane:int -> Sass.Reg.t -> int -> unit

val pred_get : warp -> lane:int -> Sass.Pred.t -> bool

val pred_set : warp -> lane:int -> Sass.Pred.t -> bool -> unit

val guard_passes : warp -> lane:int -> Sass.Pred.guard -> bool

(** {1 Divergence stack} *)

val tos : warp -> stack_entry
(** @raise Invalid_argument if the warp has exited. *)

val active_mask : warp -> int
(** Mask of the top entry, 0 if exited. *)

val active_lanes : warp -> int list

val lanes_of_mask : int -> int list

val popc_mask : int -> int

(** {1 Thread identity} *)

val lane_linear_tid : warp -> int -> int
(** Linear thread index within the block of the given lane. *)

val warp_uid : warp -> int
(** Launch-unique warp id ([block index * warps per block + w_id]);
    the warp key used in activity records. *)

val lane_in_block : warp -> int -> bool
(** Whether the lane maps to a real thread (last warp may be ragged). *)

val initial_mask : block_threads:int -> warp_id:int -> int

val tid_x : warp -> lane:int -> int

val tid_y : warp -> lane:int -> int

val global_tid : warp -> lane:int -> int
(** Flat global thread id across the whole grid. *)

(** {1 Local-memory access for instrumentation runtimes} *)

val local_read : warp -> lane:int -> addr:int -> int
(** 32-bit read from the lane's local frame (frame-relative byte
    address, as the ABI stack pointer sees it). *)

val local_write : warp -> lane:int -> addr:int -> int -> unit
