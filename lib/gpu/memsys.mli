(** The memory system timing model: a per-SM coalescer and L1, a
    partitioned L2 (one equal slice per SM, probed only by its owner),
    and a DRAM latency term. The partitioning removes the only
    cross-SM shared cache state, which is what lets the scheduler run
    SMs on separate domains with bit-identical statistics.

    Addresses arriving here are physical: callers place each address
    space in a disjoint window ({!global_window}, {!local_window},
    {!texture_window}) so lines from different spaces never alias. *)

type t

type result = {
  transactions : int;  (** memory transactions after coalescing *)
  latency : int;  (** cycles until the warp's slowest request returns *)
}

val create : Config.t -> t

val global_window : int
(** Base of the global-space physical window (0). *)

val local_window : int

val texture_window : int

val coalesce : line_bytes:int -> (int * int) list -> int list
(** [coalesce ~line_bytes addr_width_pairs] returns the sorted list of
    unique line addresses touched — the coalescer the paper's memory
    divergence study measures. *)

val global_access :
  t -> sm:int -> stats:Stats.t -> (int * int) list -> result
(** Coalesced access for one warp: list of (physical address, width in
    bytes) pairs, one per active lane. Updates cache and transaction
    statistics. *)

val contiguous_access :
  t -> sm:int -> stats:Stats.t -> first_phys:int -> last_phys:int ->
  width:int -> result
(** Fast path for accesses known to cover a contiguous physical range
    (per-lane-interleaved local memory at a uniform frame offset):
    equivalent to {!global_access} over that range but without
    materializing per-lane pairs. *)

val shared_access : t -> sm:int -> stats:Stats.t -> int list -> result
(** Shared-memory access with 32-bank conflict modeling; the input is
    the per-lane byte addresses. Identical addresses broadcast. Uses
    per-SM scratch (allocation-free, shard-safe). *)

val atomic_access :
  t -> sm:int -> stats:Stats.t -> (int * int) list -> result
(** Atomics serialize per unique address on top of the transaction
    cost. *)

val l1_stats : t -> sm:int -> int * int
(** (hits, misses) of one SM's L1 since creation. *)

val l2_stats : t -> int * int
(** (hits, misses) summed over all L2 slices. *)

val invalidate : t -> unit
(** Drops all cache contents (between launches if desired). *)

(** {1 Activity tracing} *)

val set_trace_sink : t -> Trace.Collector.t option -> unit
(** Install (or remove) the device-default collector receiving L1/L2
    probe records; mirrored into every per-SM slot. Pass [Some c] only
    when [c] wants the [Cache] category; the sink emits
    unconditionally. *)

val set_trace_ctx : t -> sm:int -> cycle:int -> warp:int -> unit
(** Stamp the per-SM context attached to subsequent probe records from
    that SM; called by the interpreter before issuing accesses while
    tracing. *)

(** {1 Telemetry} *)

type tm_sink = {
  tm_latency : Telemetry.Hist.t;
      (** observes each coalesced access's latency in cycles *)
  tm_transactions : Telemetry.Hist.t;
      (** observes each coalesced access's transaction count *)
}

val set_telemetry_sink : t -> tm_sink option -> unit
(** Install (or remove) the device-default histograms observing every
    global/local coalesced access ({!global_access} and
    {!contiguous_access}; atomics observe their underlying access
    once); mirrored into every per-SM slot. [None] keeps the
    observation sites on a single-branch fast path. *)

(** {1 Per-SM sink overrides (device sharding)} *)

val override_slot_sinks :
  t -> sm:int -> trace:Trace.Collector.t option ->
  telemetry:tm_sink option -> unit
(** Point one SM's slot at private sinks for the duration of a sharded
    launch; the scheduler merges the private buffers back in [sm_id]
    order and then calls {!restore_slot_sinks}. *)

val restore_slot_sinks : t -> unit
(** Re-mirror the device-default sinks into every slot. *)
