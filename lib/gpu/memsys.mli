(** The memory system timing model: a per-SM coalescer and L1, a
    shared L2, and a DRAM latency term.

    Addresses arriving here are physical: callers place each address
    space in a disjoint window ({!global_window}, {!local_window},
    {!texture_window}) so lines from different spaces never alias. *)

type t

type result = {
  transactions : int;  (** memory transactions after coalescing *)
  latency : int;  (** cycles until the warp's slowest request returns *)
}

val create : Config.t -> t

val global_window : int
(** Base of the global-space physical window (0). *)

val local_window : int

val texture_window : int

val coalesce : line_bytes:int -> (int * int) list -> int list
(** [coalesce ~line_bytes addr_width_pairs] returns the sorted list of
    unique line addresses touched — the coalescer the paper's memory
    divergence study measures. *)

val global_access :
  t -> sm:int -> stats:Stats.t -> (int * int) list -> result
(** Coalesced access for one warp: list of (physical address, width in
    bytes) pairs, one per active lane. Updates cache and transaction
    statistics. *)

val contiguous_access :
  t -> sm:int -> stats:Stats.t -> first_phys:int -> last_phys:int ->
  width:int -> result
(** Fast path for accesses known to cover a contiguous physical range
    (per-lane-interleaved local memory at a uniform frame offset):
    equivalent to {!global_access} over that range but without
    materializing per-lane pairs. *)

val shared_access : t -> stats:Stats.t -> int list -> result
(** Shared-memory access with 32-bank conflict modeling; the input is
    the per-lane byte addresses. Identical addresses broadcast. *)

val atomic_access :
  t -> sm:int -> stats:Stats.t -> (int * int) list -> result
(** Atomics serialize per unique address on top of the transaction
    cost. *)

val l1_stats : t -> sm:int -> int * int
(** (hits, misses) of one SM's L1 since creation. *)

val l2_stats : t -> int * int

val invalidate : t -> unit
(** Drops all cache contents (between launches if desired). *)

(** {1 Activity tracing} *)

val set_trace_sink : t -> Trace.Collector.t option -> unit
(** Install (or remove) the collector receiving L1/L2 probe records.
    Pass [Some c] only when [c] wants the [Cache] category; the sink
    emits unconditionally. *)

val set_trace_ctx : t -> cycle:int -> warp:int -> unit
(** Stamp the context attached to subsequent probe records; called by
    the interpreter before issuing accesses while tracing. *)

(** {1 Telemetry} *)

type tm_sink = {
  tm_latency : Telemetry.Hist.t;
      (** observes each coalesced access's latency in cycles *)
  tm_transactions : Telemetry.Hist.t;
      (** observes each coalesced access's transaction count *)
}

val set_telemetry_sink : t -> tm_sink option -> unit
(** Install (or remove) histograms observing every global/local
    coalesced access ({!global_access} and {!contiguous_access};
    atomics observe their underlying access once). [None] keeps the
    observation sites on a single-branch fast path. *)
