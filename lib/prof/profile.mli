(** Convenience profiling sessions: attach a PC sampler to a device,
    run kernels, build a report. *)

type session

val start : ?period:int -> Gpu.Device.t -> session
(** Create a sampler and install it.
    @raise Invalid_argument if a sampler is already installed or
    [period <= 0]. *)

val sampling : session -> Pc_sampling.t

val active : session -> bool

val stop : session -> unit
(** Detach the sampler; accumulated samples remain readable.
    Idempotent. *)

val report :
  ?top:int -> ?metrics:Metrics.t list -> stats:Gpu.Stats.t -> session ->
  Report.t
