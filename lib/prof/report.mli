(** Profiling reports: metrics, stall breakdown, and ranked hotspot
    tables rendered as aligned text, CSV, or JSON. *)

type metric_result = {
  m_name : string;
  m_unit : string;
  m_description : string;
  m_value : Metrics.value option;  (** [None]: undefined for this run *)
}

type t = {
  r_period : int;
  r_hits : int;
  r_total_samples : int;
  r_metrics : metric_result list;
  r_stalls : (string * int) list;  (** stall reason -> sample count *)
  r_instrs : Correlate.instr_row list;  (** top instructions by samples *)
  r_blocks : Correlate.block_row list;  (** top basic blocks by samples *)
  r_top_by_reason : (string * Correlate.instr_row list) list;
      (** per-stall-reason top instructions (reasons with samples only) *)
}

val build :
  ?top:int ->
  ?metrics:Metrics.t list ->
  cfg:Gpu.Config.t ->
  stats:Gpu.Stats.t ->
  Pc_sampling.t ->
  t
(** [top] bounds every ranked table (default 10); [metrics] defaults
    to the whole registry. *)

val to_text : t -> string

val to_csv : t -> string
(** The instruction hotspot table; [disasm] is CSV-quoted. *)

val to_json : t -> Trace.Json.t

val to_json_string : t -> string

val write_file : string -> t -> unit
(** Format chosen by extension: [.json], [.csv], else text. *)
