type t =
  | Selected
  | Exec_dep
  | Mem_dep
  | Sync

let all = [| Selected; Exec_dep; Mem_dep; Sync |]

let count = Array.length all

let index = function
  | Selected -> 0
  | Exec_dep -> 1
  | Mem_dep -> 2
  | Sync -> 3

let of_index i = all.(i)

let to_string = function
  | Selected -> "selected"
  | Exec_dep -> "exec_dependency"
  | Mem_dep -> "memory_dependency"
  | Sync -> "sync"

let description = function
  | Selected -> "warp was eligible to issue when sampled (not stalled)"
  | Exec_dep -> "waiting on the result of an arithmetic or shared-memory op"
  | Mem_dep -> "waiting on an outstanding global-memory access"
  | Sync -> "waiting at a thread-block barrier"
