type session = {
  s_device : Gpu.Device.t;
  s_sampling : Pc_sampling.t;
  mutable s_active : bool;
}

let start ?period device =
  let sampling = Pc_sampling.create ?period () in
  Pc_sampling.attach sampling device;
  { s_device = device; s_sampling = sampling; s_active = true }

let sampling s = s.s_sampling

let active s = s.s_active

let stop s =
  if s.s_active then begin
    Pc_sampling.detach s.s_device;
    s.s_active <- false
  end

let report ?top ?metrics ~stats s =
  Report.build ?top ?metrics
    ~cfg:(Gpu.Device.config s.s_device)
    ~stats s.s_sampling
