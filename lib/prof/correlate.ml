type instr_row = {
  ir_kernel : string;
  ir_pc : int;
  ir_disasm : string;
  ir_block : int;
  ir_samples : int;
  ir_by_reason : int array;  (* indexed by Stall.index *)
}

type block_row = {
  br_kernel : string;
  br_block : int;
  br_first : int;
  br_last : int;
  br_samples : int;
  br_by_reason : int array;
}

let instr_rows sampling =
  Pc_sampling.fold_kernels sampling
    (fun acc kernel counts ->
       let instrs = kernel.Sass.Program.instrs in
       let cfg = Sass.Cfg.build instrs in
       let n = Array.length instrs in
       let acc = ref acc in
       for pc = 0 to n - 1 do
         let by_reason =
           Array.init Stall.count (fun r -> counts.((pc * Stall.count) + r))
         in
         let total = Array.fold_left ( + ) 0 by_reason in
         if total > 0 then
           acc :=
             { ir_kernel = kernel.Sass.Program.name;
               ir_pc = pc;
               ir_disasm = Sass.Instr.to_string instrs.(pc);
               ir_block = cfg.Sass.Cfg.block_of_pc.(pc);
               ir_samples = total;
               ir_by_reason = by_reason }
             :: !acc
       done;
       !acc)
    []

let block_rows sampling =
  Pc_sampling.fold_kernels sampling
    (fun acc kernel counts ->
       let instrs = kernel.Sass.Program.instrs in
       let cfg = Sass.Cfg.build instrs in
       let nblocks = Array.length cfg.Sass.Cfg.blocks in
       let samples = Array.make nblocks 0 in
       let by_reason = Array.init nblocks (fun _ -> Array.make Stall.count 0) in
       Array.iteri
         (fun i c ->
            if c > 0 then begin
              let pc = i / Stall.count and r = i mod Stall.count in
              let b = cfg.Sass.Cfg.block_of_pc.(pc) in
              samples.(b) <- samples.(b) + c;
              by_reason.(b).(r) <- by_reason.(b).(r) + c
            end)
         counts;
       let acc = ref acc in
       for b = nblocks - 1 downto 0 do
         if samples.(b) > 0 then begin
           let blk = cfg.Sass.Cfg.blocks.(b) in
           acc :=
             { br_kernel = kernel.Sass.Program.name;
               br_block = b;
               br_first = blk.Sass.Cfg.first;
               br_last = blk.Sass.Cfg.last;
               br_samples = samples.(b);
               br_by_reason = by_reason.(b) }
             :: !acc
         end
       done;
       !acc)
    []

(* Rank by descending sample count; ties break on (kernel, pc) so
   reports are deterministic. *)
let take n l =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n l

let sort_instrs key rows =
  List.sort
    (fun a b ->
       match compare (key b) (key a) with
       | 0 -> compare (a.ir_kernel, a.ir_pc) (b.ir_kernel, b.ir_pc)
       | c -> c)
    rows

let top_instrs ?(n = 10) sampling =
  take n (sort_instrs (fun r -> r.ir_samples) (instr_rows sampling))

let top_by_reason ?(n = 10) sampling reason =
  let i = Stall.index reason in
  instr_rows sampling
  |> List.filter (fun r -> r.ir_by_reason.(i) > 0)
  |> sort_instrs (fun r -> r.ir_by_reason.(i))
  |> take n

let top_blocks ?(n = 10) sampling =
  block_rows sampling
  |> List.sort (fun a b ->
      match compare b.br_samples a.br_samples with
      | 0 -> compare (a.br_kernel, a.br_block) (b.br_kernel, b.br_block)
      | c -> c)
  |> take n
