(** Stall reasons attributed to PC samples, mirroring the buckets of
    CUPTI's [CUpti_ActivityPCSamplingStallReason] that this machine
    can distinguish. *)

type t =
  | Selected  (** warp was eligible to issue when sampled *)
  | Exec_dep  (** waiting on an arithmetic/shared-memory result *)
  | Mem_dep  (** waiting on an outstanding global-memory access *)
  | Sync  (** waiting at a thread-block barrier *)

val all : t array

val count : int

val index : t -> int
(** Dense index in [0, count); inverse of {!of_index}. *)

val of_index : int -> t

val to_string : t -> string
(** nvprof-style snake_case name, e.g. ["memory_dependency"]. *)

val description : t -> string
