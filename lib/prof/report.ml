type metric_result = {
  m_name : string;
  m_unit : string;
  m_description : string;
  m_value : Metrics.value option;
}

type t = {
  r_period : int;
  r_hits : int;
  r_total_samples : int;
  r_metrics : metric_result list;
  r_stalls : (string * int) list;
  r_instrs : Correlate.instr_row list;
  r_blocks : Correlate.block_row list;
  r_top_by_reason : (string * Correlate.instr_row list) list;
}

let build ?(top = 10) ?metrics ~cfg ~stats sampling =
  let selected =
    match metrics with Some ms -> ms | None -> Metrics.registry
  in
  let env = { Metrics.stats; cfg; sampling = Some sampling } in
  let metric_results =
    List.map
      (fun m ->
         { m_name = Metrics.name m;
           m_unit = Metrics.unit_ m;
           m_description = Metrics.description m;
           m_value = Metrics.compute env m })
      selected
  in
  let totals = Pc_sampling.stall_totals sampling in
  let stalls =
    Array.to_list
      (Array.mapi
         (fun i c -> (Stall.to_string (Stall.of_index i), c))
         totals)
  in
  let by_reason =
    (* Only stall reasons that actually occurred get a table. *)
    List.filter_map
      (fun reason ->
         if totals.(Stall.index reason) = 0 then None
         else
           Some
             ( Stall.to_string reason,
               Correlate.top_by_reason ~n:top sampling reason ))
      (Array.to_list Stall.all)
  in
  { r_period = Pc_sampling.period sampling;
    r_hits = Pc_sampling.hits sampling;
    r_total_samples = Pc_sampling.total_samples sampling;
    r_metrics = metric_results;
    r_stalls = stalls;
    r_instrs = Correlate.top_instrs ~n:top sampling;
    r_blocks = Correlate.top_blocks ~n:top sampling;
    r_top_by_reason = by_reason }

(* ---------- text ---------- *)

let pct part whole =
  if whole = 0 then 0. else 100. *. float_of_int part /. float_of_int whole

let instr_table ?(key = fun r -> r.Correlate.ir_samples) b rows total =
  Buffer.add_string b
    (Printf.sprintf "%8s %6s  %-24s %4s %5s  %s\n" "samples" "%" "kernel"
       "pc" "block" "instruction");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%8d %5.1f%%  %-24s %4d %5d  %s\n" (key r)
            (pct (key r) total)
            r.Correlate.ir_kernel r.Correlate.ir_pc r.Correlate.ir_block
            r.Correlate.ir_disasm))
    rows

let to_text t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "== PC sampling ==\n";
  Buffer.add_string b
    (Printf.sprintf "period: %d issue slots   hits: %d   warp samples: %d\n"
       t.r_period t.r_hits t.r_total_samples);
  Buffer.add_string b "\n== Metrics ==\n";
  List.iter
    (fun m ->
       let v =
         match m.m_value with
         | None -> "n/a"
         | Some v -> Metrics.value_to_string v
       in
       Buffer.add_string b
         (Printf.sprintf "%-28s %-14s %-12s %s\n" m.m_name v m.m_unit
            m.m_description))
    t.r_metrics;
  Buffer.add_string b "\n== Stall breakdown ==\n";
  List.iter
    (fun (name, c) ->
       Buffer.add_string b
         (Printf.sprintf "%-20s %5.1f%%  (%d samples)\n" name
            (pct c t.r_total_samples)
            c))
    t.r_stalls;
  Buffer.add_string b
    (Printf.sprintf "\n== Hotspot instructions (top %d by samples) ==\n"
       (List.length t.r_instrs));
  instr_table b t.r_instrs t.r_total_samples;
  Buffer.add_string b "\n== Hot basic blocks ==\n";
  Buffer.add_string b
    (Printf.sprintf "%8s %6s  %-24s %5s %11s\n" "samples" "%" "kernel"
       "block" "pc range");
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%8d %5.1f%%  %-24s %5d %4d..%-4d\n"
            r.Correlate.br_samples
            (pct r.Correlate.br_samples t.r_total_samples)
            r.Correlate.br_kernel r.Correlate.br_block r.Correlate.br_first
            r.Correlate.br_last))
    t.r_blocks;
  List.iter
    (fun (reason, rows) ->
       Buffer.add_string b
         (Printf.sprintf "\n== Top instructions by %s ==\n" reason);
       (* The samples column counts this reason only, matching the
          ranking. *)
       let key =
         match
           List.find_opt
             (fun r -> Stall.to_string r = reason)
             (Array.to_list Stall.all)
         with
         | Some r -> fun row -> row.Correlate.ir_by_reason.(Stall.index r)
         | None -> fun row -> row.Correlate.ir_samples
       in
       instr_table ~key b rows t.r_total_samples)
    t.r_top_by_reason;
  Buffer.contents b

(* ---------- csv ---------- *)

let csv_quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""

(* RFC 4180: any field containing a comma, quote, or line break must
   be quoted, with embedded quotes doubled. Kernel names, metric
   values (stall breakdowns are comma-separated), and descriptions
   all can need this; disasm stays always-quoted. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then csv_quote s
  else s

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "kernel,pc,block,samples";
  Array.iter
    (fun r -> Buffer.add_string b ("," ^ Stall.to_string r))
    Stall.all;
  Buffer.add_string b ",disasm\n";
  List.iter
    (fun r ->
       Buffer.add_string b
         (Printf.sprintf "%s,%d,%d,%d"
            (csv_field r.Correlate.ir_kernel)
            r.Correlate.ir_pc r.Correlate.ir_block r.Correlate.ir_samples);
       Array.iter
         (fun c -> Buffer.add_string b (Printf.sprintf ",%d" c))
         r.Correlate.ir_by_reason;
       Buffer.add_string b ("," ^ csv_quote r.Correlate.ir_disasm ^ "\n"))
    t.r_instrs;
  Buffer.add_string b "\nmetric,value,unit,description\n";
  List.iter
    (fun m ->
       let v =
         match m.m_value with
         | None -> "n/a"
         | Some v -> Metrics.value_to_string v
       in
       Buffer.add_string b
         (String.concat ","
            [ csv_field m.m_name; csv_field v; csv_field m.m_unit;
              csv_field m.m_description ]
          ^ "\n"))
    t.r_metrics;
  Buffer.contents b

(* ---------- json ---------- *)

let json_of_value = function
  | None -> Trace.Json.Null
  | Some (Metrics.Scalar v) -> Trace.Json.Float v
  | Some (Metrics.Breakdown parts) ->
    Trace.Json.Obj (List.map (fun (n, v) -> (n, Trace.Json.Float v)) parts)

let json_of_instr r =
  Trace.Json.Obj
    [ ("kernel", Trace.Json.Str r.Correlate.ir_kernel);
      ("pc", Trace.Json.Int r.Correlate.ir_pc);
      ("block", Trace.Json.Int r.Correlate.ir_block);
      ("samples", Trace.Json.Int r.Correlate.ir_samples);
      ( "by_reason",
        Trace.Json.Obj
          (Array.to_list
             (Array.mapi
                (fun i c ->
                   (Stall.to_string (Stall.of_index i), Trace.Json.Int c))
                r.Correlate.ir_by_reason)) );
      ("disasm", Trace.Json.Str r.Correlate.ir_disasm) ]

let to_json t =
  Trace.Json.Obj
    [ ("period", Trace.Json.Int t.r_period);
      ("hits", Trace.Json.Int t.r_hits);
      ("total_samples", Trace.Json.Int t.r_total_samples);
      ( "metrics",
        Trace.Json.List
          (List.map
             (fun m ->
                Trace.Json.Obj
                  [ ("name", Trace.Json.Str m.m_name);
                    ("unit", Trace.Json.Str m.m_unit);
                    ("value", json_of_value m.m_value);
                    ("description", Trace.Json.Str m.m_description) ])
             t.r_metrics) );
      ( "stalls",
        Trace.Json.Obj
          (List.map (fun (n, c) -> (n, Trace.Json.Int c)) t.r_stalls) );
      ("hotspots", Trace.Json.List (List.map json_of_instr t.r_instrs));
      ( "blocks",
        Trace.Json.List
          (List.map
             (fun r ->
                Trace.Json.Obj
                  [ ("kernel", Trace.Json.Str r.Correlate.br_kernel);
                    ("block", Trace.Json.Int r.Correlate.br_block);
                    ("first", Trace.Json.Int r.Correlate.br_first);
                    ("last", Trace.Json.Int r.Correlate.br_last);
                    ("samples", Trace.Json.Int r.Correlate.br_samples) ])
             t.r_blocks) ) ]

let to_json_string t = Trace.Json.to_string (to_json t)

let write_file path t =
  if Filename.check_suffix path ".json" then
    Trace.Json.write_file path (to_json t)
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
         output_string oc
           (if Filename.check_suffix path ".csv" then to_csv t else to_text t))
  end
