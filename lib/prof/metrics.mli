(** Derived-metrics engine: nvprof-named metrics computed from
    {!Gpu.Stats} counters (and, for [stall_breakdown], from PC
    samples). Metrics live in a registry with descriptions so the CLI
    can list them ([--query-metrics]) and validate [--metrics]
    selections up front. *)

type value =
  | Scalar of float
  | Breakdown of (string * float) list
      (** named percentages, e.g. the stall-reason breakdown *)

type env = {
  stats : Gpu.Stats.t;
  cfg : Gpu.Config.t;
  sampling : Pc_sampling.t option;
}

type t

val name : t -> string

val description : t -> string

val unit_ : t -> string

val registry : t list
(** All known metrics, in presentation order. *)

val names : unit -> string list

val find : string -> t option

val resolve : string list -> (t list, string) result
(** Look up a [--metrics] selection, reporting every unknown name. *)

val compute : env -> t -> value option
(** [None] when the metric is undefined for this run (zero
    denominator, or no sampling data for [stall_breakdown]). *)

val value_to_string : value -> string
