type value =
  | Scalar of float
  | Breakdown of (string * float) list

type env = {
  stats : Gpu.Stats.t;
  cfg : Gpu.Config.t;
  sampling : Pc_sampling.t option;
}

type t = {
  name : string;
  description : string;
  unit_ : string;
  compute : env -> value option;
}

let name m = m.name

let description m = m.description

let unit_ m = m.unit_

let ratio num den =
  if den = 0 then None else Some (float_of_int num /. float_of_int den)

let pct num den = Option.map (fun r -> 100. *. r) (ratio num den)

let scalar f env = Option.map (fun v -> Scalar v) (f env)

let registry =
  let open Gpu.Stats in
  [ { name = "ipc";
      description = "Warp instructions issued per device cycle";
      unit_ = "instr/cycle";
      compute = scalar (fun e -> ratio e.stats.warp_instrs e.stats.cycles) };
    { name = "achieved_occupancy";
      description =
        "Average resident warps per SM cycle over the SM warp capacity";
      unit_ = "ratio";
      compute =
        scalar (fun e ->
            ratio e.stats.resident_warp_cycles
              (e.stats.sm_active_cycles * e.cfg.Gpu.Config.max_warps_per_sm)) };
    { name = "branch_efficiency";
      description = "Percentage of branches that did not diverge";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct
              (e.stats.branches - e.stats.divergent_branches)
              e.stats.branches) };
    { name = "warp_execution_efficiency";
      description =
        "Average active threads per warp instruction over the warp size";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct e.stats.thread_instrs
              (e.stats.warp_instrs * e.cfg.Gpu.Config.warp_size)) };
    { name = "gld_efficiency";
      description =
        "Requested global-load bytes over bytes moved by load transactions";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct e.stats.gld_requested_bytes
              (e.stats.gld_transactions * e.cfg.Gpu.Config.line_bytes)) };
    { name = "gst_efficiency";
      description =
        "Requested global-store bytes over bytes moved by store transactions";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct e.stats.gst_requested_bytes
              (e.stats.gst_transactions * e.cfg.Gpu.Config.line_bytes)) };
    { name = "l1_hit_rate";
      description = "L1 data-cache hit rate over global transactions";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct e.stats.l1_hits (e.stats.l1_hits + e.stats.l1_misses)) };
    { name = "l2_hit_rate";
      description = "L2 cache hit rate over L1 misses";
      unit_ = "%";
      compute =
        scalar (fun e ->
            pct e.stats.l2_hits (e.stats.l2_hits + e.stats.l2_misses)) };
    { name = "dram_throughput";
      description = "Bytes fetched from DRAM (L2 misses) per device cycle";
      unit_ = "bytes/cycle";
      compute =
        scalar (fun e ->
            ratio
              (e.stats.l2_misses * e.cfg.Gpu.Config.line_bytes)
              e.stats.cycles) };
    { name = "stall_breakdown";
      description =
        "Percentage of PC samples per stall reason (needs --profile)";
      unit_ = "%";
      compute =
        (fun e ->
          match e.sampling with
          | None -> None
          | Some sampling ->
            let totals = Pc_sampling.stall_totals sampling in
            let sum = Array.fold_left ( + ) 0 totals in
            if sum = 0 then None
            else
              Some
                (Breakdown
                   (Array.to_list
                      (Array.mapi
                         (fun i c ->
                            ( Stall.to_string (Stall.of_index i),
                              100. *. float_of_int c /. float_of_int sum ))
                         totals)))) } ]

let names () = List.map (fun m -> m.name) registry

let find n = List.find_opt (fun m -> m.name = n) registry

let resolve requested =
  let unknown = List.filter (fun n -> find n = None) requested in
  match unknown with
  | [] -> Ok (List.filter_map find requested)
  | _ ->
    Error
      (Printf.sprintf "unknown metric(s): %s (try --query-metrics)"
         (String.concat ", " unknown))

let compute env m = m.compute env

let value_to_string = function
  | Scalar v -> Printf.sprintf "%.6g" v
  | Breakdown parts ->
    String.concat ", "
      (List.map (fun (n, v) -> Printf.sprintf "%s=%.1f%%" n v) parts)
