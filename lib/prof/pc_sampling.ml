let default_period = 64

type entry = {
  pk_kernel : Sass.Program.kernel;
  pk_counts : int array;  (* pc * Stall.count + stall index *)
}

type t = {
  period : int;
  kernels : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable total_samples : int;
  (* Serializes [hit] under device sharding: SMs sample concurrently
     into the shared tables. Per-SM sample points are deterministic
     (per-SM credit) and the increments commute, so totals are
     bit-identical whatever the interleaving. Uncontended in
     sequential mode. *)
  lock : Mutex.t;
}

let create ?(period = default_period) () =
  if period <= 0 then
    invalid_arg "Pc_sampling.create: period must be positive";
  { period; kernels = Hashtbl.create 8; hits = 0; total_samples = 0;
    lock = Mutex.create () }

let period t = t.period

let hits t = t.hits

let total_samples t = t.total_samples

let entry_for t kernel =
  let name = kernel.Sass.Program.name in
  match Hashtbl.find_opt t.kernels name with
  | Some e -> e
  | None ->
    let n = Array.length kernel.Sass.Program.instrs in
    let e = { pk_kernel = kernel; pk_counts = Array.make (n * Stall.count) 0 } in
    Hashtbl.add t.kernels name e;
    e

(* Attribute a stall reason to a resident warp. A warp whose wakeup
   time has passed was runnable (it just lost scheduler arbitration or
   is about to issue), which CUPTI reports as [selected]; otherwise
   the latency class of its last issued instruction decides between
   the memory and execution dependency buckets. *)
let classify sm w =
  let open Gpu.State in
  match w.w_status with
  | W_barrier -> Stall.Sync
  | _ when w.w_ready_at <= sm.sm_cycle -> Stall.Selected
  | _ -> if w.w_stall_code = 1 then Stall.Mem_dep else Stall.Exec_dep

(* The sampler hook: snapshot every resident, unretired warp of the
   sampled SM. Pure observation -- no simulator state is written, so a
   profiled run produces bit-identical [Gpu.Stats]. *)
let hit t sm =
  let open Gpu.State in
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  t.hits <- t.hits + 1;
  let kernel = sm.sm_launch.l_kernel in
  let e = entry_for t kernel in
  let n = Array.length kernel.Sass.Program.instrs in
  Array.iter
    (fun w ->
       if w.w_status <> W_done then
         match w.w_stack with
         | [] -> ()
         | top :: _ ->
           let pc = top.e_pc in
           if pc >= 0 && pc < n then begin
             let reason = classify sm w in
             let idx = (pc * Stall.count) + Stall.index reason in
             e.pk_counts.(idx) <- e.pk_counts.(idx) + 1;
             t.total_samples <- t.total_samples + 1
           end)
    sm.sm_warps

let sampler t : Gpu.State.sampler =
  { Gpu.State.sp_period = t.period; sp_credit = t.period; sp_hit = hit t }

let attach t device =
  (match Gpu.Device.sampler device with
   | Some _ ->
     invalid_arg "Pc_sampling.attach: a sampler is already installed"
   | None -> ());
  Gpu.Device.set_sampler device (Some (sampler t))

let detach device = Gpu.Device.set_sampler device None

let fold_kernels t f acc =
  (* Sort by kernel name so consumers see a deterministic order
     despite the hash table. *)
  Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.kernels []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.fold_left (fun acc (_, e) -> f acc e.pk_kernel e.pk_counts) acc

let fold_pcs t f acc =
  fold_kernels t
    (fun acc kernel counts ->
       let n = Array.length kernel.Sass.Program.instrs in
       let acc = ref acc in
       for pc = 0 to n - 1 do
         let by_reason =
           Array.init Stall.count (fun r -> counts.((pc * Stall.count) + r))
         in
         let total = Array.fold_left ( + ) 0 by_reason in
         if total > 0 then acc := f !acc kernel pc ~total ~by_reason
       done;
       !acc)
    acc

let stall_totals t =
  let totals = Array.make Stall.count 0 in
  Hashtbl.iter
    (fun _ e ->
       Array.iteri
         (fun i c ->
            let r = i mod Stall.count in
            totals.(r) <- totals.(r) + c)
         e.pk_counts)
    t.kernels;
  totals
