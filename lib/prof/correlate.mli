(** Source correlation: map sampled PCs through the program and its
    CFG back to instructions and basic blocks, and rank hotspots.

    All rankings sort by descending sample count with (kernel, pc)
    tie-breaks, so output is deterministic. *)

type instr_row = {
  ir_kernel : string;
  ir_pc : int;
  ir_disasm : string;  (** disassembly of the instruction at [ir_pc] *)
  ir_block : int;  (** basic-block id from {!Sass.Cfg} *)
  ir_samples : int;
  ir_by_reason : int array;  (** indexed by {!Stall.index} *)
}

type block_row = {
  br_kernel : string;
  br_block : int;
  br_first : int;  (** PC of the block's first instruction *)
  br_last : int;  (** PC of the block's last instruction (inclusive) *)
  br_samples : int;
  br_by_reason : int array;
}

val instr_rows : Pc_sampling.t -> instr_row list
(** Every sampled instruction, kernels in name order, PCs ascending. *)

val block_rows : Pc_sampling.t -> block_row list

val top_instrs : ?n:int -> Pc_sampling.t -> instr_row list
(** Top [n] (default 10) instructions by total samples. *)

val top_by_reason : ?n:int -> Pc_sampling.t -> Stall.t -> instr_row list
(** Top [n] instructions by samples attributed to one stall reason. *)

val top_blocks : ?n:int -> Pc_sampling.t -> block_row list
