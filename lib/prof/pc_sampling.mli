(** Statistical PC sampling (nvprof/CUPTI style).

    A sampler periodically snapshots every resident warp of the SM
    being scheduled: the warp's current PC and an attributed stall
    reason. Samples accumulate in per-kernel, per-PC histograms that
    {!Correlate} maps back to instructions and basic blocks.

    The sampling period is denominated in issue slots (idle cycles
    spend [issue_width] slots each), so busy and stall-bound phases
    are sampled at the same rate. The hook only observes simulator
    state: a profiled run produces bit-identical {!Gpu.Stats} to an
    unprofiled one. *)

type t

val default_period : int
(** 64 issue slots, the [--pc-sampling-period] default. *)

val create : ?period:int -> unit -> t
(** @raise Invalid_argument if [period <= 0]. *)

val period : t -> int

val hits : t -> int
(** Number of times the sampler fired (credit exhaustions). *)

val total_samples : t -> int
(** Number of warp samples accumulated (each hit samples every
    resident warp of one SM). *)

val attach : t -> Gpu.Device.t -> unit
(** Install on a device.
    @raise Invalid_argument if a sampler is already installed. *)

val detach : Gpu.Device.t -> unit
(** Remove any installed sampler; accumulated histograms survive. *)

val sampler : t -> Gpu.State.sampler
(** The raw scheduler hook, for callers managing installation
    themselves. *)

val fold_kernels :
  t -> ('a -> Sass.Program.kernel -> int array -> 'a) -> 'a -> 'a
(** Fold over sampled kernels in name order. The [int array] holds
    [pc * Stall.count + Stall.index reason] sample counts. *)

val fold_pcs :
  t ->
  ('a -> Sass.Program.kernel -> int -> total:int -> by_reason:int array -> 'a) ->
  'a ->
  'a
(** Fold over every PC with at least one sample, kernels in name
    order and PCs ascending. [by_reason] is indexed by {!Stall.index}. *)

val stall_totals : t -> int array
(** Device-wide sample totals per stall reason, indexed by
    {!Stall.index}. *)
