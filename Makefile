# Convenience targets; `make ci` is what a pipeline should run.

.PHONY: all build test fmt ci clean profile

# Workload for `make profile`, e.g. `make profile WORKLOAD=parboil/sgemm`.
WORKLOAD ?= rodinia/bfs

all: build

build:
	dune build

test:
	dune runtest

# Format check only where ocamlformat exists; the toolchain image
# does not ship it, and dune's @fmt alias fails hard without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

ci: fmt
	dune build
	dune runtest
	dune exec bin/sassi_run.exe -- --query-metrics > /dev/null

profile: build
	dune exec bin/sassi_run.exe -- run $(WORKLOAD) --profile

clean:
	dune clean
