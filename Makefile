# Convenience targets; `make ci` is what a pipeline should run.

.PHONY: all build test fmt lint ci clean profile telemetry bench-parallel \
	bench-host-overhead bench-serve bench-analysis-mem

# Workload for `make profile`, e.g. `make profile WORKLOAD=parboil/sgemm`.
WORKLOAD ?= rodinia/bfs

all: build

build:
	dune build

test:
	dune runtest

# Format check only where ocamlformat exists; the toolchain image
# does not ship it, and dune's @fmt alias fails hard without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Static analysis over every registered workload's kernels; exits
# non-zero on any error-severity finding (warnings are printed).
lint: build
	dune exec bin/sassi_run.exe -- lint all

ci: fmt
	dune build
	dune runtest
	dune exec bin/sassi_run.exe -- --query-metrics > /dev/null
	dune exec bin/sassi_run.exe -- --build-info > /dev/null
	@# Verifier gate: zero error-severity findings across the suite,
	@# every shared-memory access race-classified under its real launch
	@# (no proven races), and no kernel regressing from proven-safe to
	@# unknown against the committed baseline (race-waivers.txt lists
	@# deliberate exemptions).
	dune exec bin/sassi_run.exe -- lint all --prove-races \
	  --race-baseline race-baseline.json --race-waivers race-waivers.txt
	@# Memory-prediction gate: static bank-conflict degree and
	@# coalesced-transaction predictions must match the machine's own
	@# counters exactly on the affine workloads (sgemm fully exact,
	@# spmv's direct sites exact); writes BENCH_analysis_mem.json.
	dune exec bench/main.exe -- analysis-mem
	@# Compare smoke test: two identical runs must diff clean (exit 0).
	@tmp=$$(mktemp -d); \
	dune exec bin/sassi_run.exe -- run parboil/sgemm --variant small \
	  --manifest $$tmp/a.json > /dev/null; \
	dune exec bin/sassi_run.exe -- run parboil/sgemm --variant small \
	  --manifest $$tmp/b.json > /dev/null; \
	dune exec bin/sassi_run.exe -- compare $$tmp/a.json $$tmp/b.json \
	  || { echo "ci: identical runs reported a regression"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp
	@# Seeded regression: shrinking L1 on a cache-sensitive workload
	@# (spmv reuses its row pointers; sgemm streams and would not move)
	@# must trip the comparator (exit 1).
	@tmp=$$(mktemp -d); \
	dune exec bin/sassi_run.exe -- run parboil/spmv --variant small \
	  --manifest $$tmp/base.json > /dev/null; \
	dune exec bin/sassi_run.exe -- run parboil/spmv --variant small \
	  --l1-bytes 512 --manifest $$tmp/bad.json > /dev/null; \
	if dune exec bin/sassi_run.exe -- compare $$tmp/base.json $$tmp/bad.json > /dev/null; then \
	  echo "ci: seeded regression was not detected"; rm -rf $$tmp; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "ci: compare smoke + seeded-regression checks passed"
	@# Parallel determinism: a --jobs 2 campaign must produce the same
	@# manifest counters as --jobs 1 (the comparator ignores wall time
	@# and argv, so any diff is a real scheduling leak).
	@tmp=$$(mktemp -d); \
	printf '%s\n' \
	  '{"schema":"sassi-campaign/1","name":"ci-smoke","seed":2025,"jobs":[' \
	  ' {"workload":"parboil/sgemm","variant":"small","kind":"inject","injections":4},' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"run"}]}' \
	  > $$tmp/campaign.json; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 1 \
	  --manifest $$tmp/j1.json > /dev/null; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --manifest $$tmp/j2.json > /dev/null; \
	dune exec bin/sassi_run.exe -- compare $$tmp/j1.json $$tmp/j2.json \
	  || { echo "ci: --jobs 2 campaign diverged from --jobs 1"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "ci: parallel campaign determinism check passed"
	@# Device-sharding determinism: a --device-domains 4 run must be
	@# byte-identical to --device-domains 1 — stats JSON, output
	@# digest and telemetry export all cmp clean. Covers a kernel
	@# that shards (sgemm), one forced sequential by cross-block
	@# atomics (histo) and one by the plain-store alias scan (lud).
	@tmp=$$(mktemp -d); \
	for w in parboil/sgemm parboil/histo rodinia/lud; do \
	  slug=$$(echo $$w | tr / -); \
	  dune exec bin/sassi_run.exe -- run $$w --stats-json \
	    --telemetry-out $$tmp/tele.json --device-domains 1 \
	    > $$tmp/$$slug-d1.out; \
	  mv $$tmp/tele.json $$tmp/$$slug-d1.tele; \
	  dune exec bin/sassi_run.exe -- run $$w --stats-json \
	    --telemetry-out $$tmp/tele.json --device-domains 4 \
	    > $$tmp/$$slug-d4.out; \
	  cmp -s $$tmp/$$slug-d1.out $$tmp/$$slug-d4.out \
	    || { echo "ci: $$w stats diverged across --device-domains"; rm -rf $$tmp; exit 1; }; \
	  cmp -s $$tmp/$$slug-d1.tele $$tmp/tele.json \
	    || { echo "ci: $$w telemetry diverged across --device-domains"; rm -rf $$tmp; exit 1; }; \
	done; \
	rm -rf $$tmp; \
	echo "ci: device-sharding determinism check passed"
	@# Host-trace gate: a traced --jobs 2 campaign must emit Chrome
	@# trace_event JSON that parses (trace-summary exit 0), and its
	@# manifest must diff clean against the untraced run — spans never
	@# perturb results.
	@tmp=$$(mktemp -d); \
	printf '%s\n' \
	  '{"schema":"sassi-campaign/1","name":"ci-trace","seed":2025,"jobs":[' \
	  ' {"workload":"parboil/sgemm","variant":"small","kind":"inject","injections":4},' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"run"}]}' \
	  > $$tmp/campaign.json; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --manifest $$tmp/plain.json > /dev/null; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --host-trace $$tmp/host.json --host-metrics $$tmp/pool.prom \
	  --manifest $$tmp/traced.json > /dev/null; \
	dune exec bin/sassi_run.exe -- trace-summary $$tmp/host.json > /dev/null \
	  || { echo "ci: --host-trace output is not a loadable Chrome trace"; rm -rf $$tmp; exit 1; }; \
	grep -q '^sassi_pool_tasks_total' $$tmp/pool.prom \
	  || { echo "ci: --host-metrics missing pool counters"; rm -rf $$tmp; exit 1; }; \
	dune exec bin/sassi_run.exe -- compare $$tmp/plain.json $$tmp/traced.json \
	  || { echo "ci: traced campaign diverged from untraced"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "ci: host-trace gate passed"
	@# Serve gate: boot the daemon on an ephemeral port, POST a
	@# campaign over HTTP, require (a) a live /metrics scrape whose
	@# request counter is strictly monotonic across scrapes, and (b) a
	@# served manifest byte-identical to the CLI run of the same
	@# campaign file; then a clean POST /shutdown exit.
	@tmp=$$(mktemp -d); \
	printf '%s\n' \
	  '{"schema":"sassi-campaign/1","name":"ci-serve","seed":2025,"jobs":[' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"inject","injections":2},' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"run"}]}' \
	  > $$tmp/campaign.json; \
	dune exec bin/sassi_run.exe -- serve --port 0 --jobs 2 > $$tmp/serve.log 2>&1 & \
	pid=$$!; \
	port=""; \
	for i in $$(seq 1 100); do \
	  port=$$(sed -n 's/.*listening on http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' $$tmp/serve.log); \
	  [ -n "$$port" ] && break; sleep 0.1; \
	done; \
	[ -n "$$port" ] || { echo "ci: serve never reported a port"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	curl -sf -X POST --data-binary @$$tmp/campaign.json http://127.0.0.1:$$port/jobs > /dev/null \
	  || { echo "ci: POST /jobs failed"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	state=""; \
	for i in $$(seq 1 600); do \
	  state=$$(curl -sf http://127.0.0.1:$$port/jobs/job-1 | grep -o '"state":"[a-z]*"'); \
	  [ "$$state" = '"state":"done"' ] && break; sleep 0.1; \
	done; \
	[ "$$state" = '"state":"done"' ] \
	  || { echo "ci: served job never finished ($$state)"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	curl -sf http://127.0.0.1:$$port/metrics > $$tmp/m1.prom; \
	curl -sf http://127.0.0.1:$$port/metrics > $$tmp/m2.prom; \
	c1=$$(sed -n 's/^sassi_serve_requests_total{endpoint="metrics"} //p' $$tmp/m1.prom); \
	c2=$$(sed -n 's/^sassi_serve_requests_total{endpoint="metrics"} //p' $$tmp/m2.prom); \
	[ -n "$$c1" ] && [ -n "$$c2" ] && [ "$$c2" -gt "$$c1" ] \
	  || { echo "ci: /metrics request counter not monotonic ($$c1 -> $$c2)"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	grep -q '^sassi_pool_tasks_total' $$tmp/m1.prom \
	  || { echo "ci: live scrape missing pool counters"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	curl -sf http://127.0.0.1:$$port/jobs/job-1/manifest > $$tmp/served.json \
	  || { echo "ci: GET manifest failed"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --manifest $$tmp/cli.json > /dev/null; \
	cmp -s $$tmp/served.json $$tmp/cli.json \
	  || { echo "ci: served manifest differs from CLI manifest"; kill $$pid; rm -rf $$tmp; exit 1; }; \
	curl -sf -X POST http://127.0.0.1:$$port/shutdown > /dev/null; \
	wait $$pid \
	  || { echo "ci: serve exited non-zero after shutdown"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "ci: serve gate passed (port $$port, served manifest == CLI manifest)"

# Sequential-vs-parallel wall clock and bit-identity on two task
# mixes; writes BENCH_parallel.json (see EXPERIMENTS.md).
bench-parallel: build
	dune exec bench/main.exe -- parallel --jobs 4

# Span-tracing overhead: traced vs untraced legs of one task mix
# (<5% budget, bit-identical results); writes BENCH_host_overhead.json.
bench-host-overhead: build
	dune exec bench/main.exe -- host-overhead --jobs 4

# Compile-cache cold vs hit latency percentiles plus a daemon
# round-trip (two identical served jobs, second rides the cache);
# writes BENCH_serve.json. Fails unless the hit path is strictly
# faster and all outputs are bit-identical.
bench-serve: build
	dune exec bench/main.exe -- serve --jobs 2

# Static memory predictions vs the machine: per-site bank-conflict
# degree and coalesced line counts, audited in-simulator; writes
# BENCH_analysis_mem.json. Fails on any exact-site mismatch.
bench-analysis-mem: build
	dune exec bench/main.exe -- analysis-mem

profile: build
	dune exec bin/sassi_run.exe -- run $(WORKLOAD) --profile

# Histogram/series summary for one workload, e.g.
# `make telemetry WORKLOAD=parboil/spmv`.
telemetry: build
	dune exec bin/sassi_run.exe -- run $(WORKLOAD) --telemetry

clean:
	dune clean
