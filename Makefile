# Convenience targets; `make ci` is what a pipeline should run.

.PHONY: all build test fmt lint ci clean profile telemetry bench-parallel \
	bench-host-overhead

# Workload for `make profile`, e.g. `make profile WORKLOAD=parboil/sgemm`.
WORKLOAD ?= rodinia/bfs

all: build

build:
	dune build

test:
	dune runtest

# Format check only where ocamlformat exists; the toolchain image
# does not ship it, and dune's @fmt alias fails hard without it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

# Static analysis over every registered workload's kernels; exits
# non-zero on any error-severity finding (warnings are printed).
lint: build
	dune exec bin/sassi_run.exe -- lint all

ci: fmt
	dune build
	dune runtest
	dune exec bin/sassi_run.exe -- --query-metrics > /dev/null
	dune exec bin/sassi_run.exe -- --build-info > /dev/null
	@# Verifier gate: zero error-severity findings across the suite.
	dune exec bin/sassi_run.exe -- lint all
	@# Compare smoke test: two identical runs must diff clean (exit 0).
	@tmp=$$(mktemp -d); \
	dune exec bin/sassi_run.exe -- run parboil/sgemm --variant small \
	  --manifest $$tmp/a.json > /dev/null; \
	dune exec bin/sassi_run.exe -- run parboil/sgemm --variant small \
	  --manifest $$tmp/b.json > /dev/null; \
	dune exec bin/sassi_run.exe -- compare $$tmp/a.json $$tmp/b.json \
	  || { echo "ci: identical runs reported a regression"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp
	@# Seeded regression: shrinking L1 on a cache-sensitive workload
	@# (spmv reuses its row pointers; sgemm streams and would not move)
	@# must trip the comparator (exit 1).
	@tmp=$$(mktemp -d); \
	dune exec bin/sassi_run.exe -- run parboil/spmv --variant small \
	  --manifest $$tmp/base.json > /dev/null; \
	dune exec bin/sassi_run.exe -- run parboil/spmv --variant small \
	  --l1-bytes 512 --manifest $$tmp/bad.json > /dev/null; \
	if dune exec bin/sassi_run.exe -- compare $$tmp/base.json $$tmp/bad.json > /dev/null; then \
	  echo "ci: seeded regression was not detected"; rm -rf $$tmp; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "ci: compare smoke + seeded-regression checks passed"
	@# Parallel determinism: a --jobs 2 campaign must produce the same
	@# manifest counters as --jobs 1 (the comparator ignores wall time
	@# and argv, so any diff is a real scheduling leak).
	@tmp=$$(mktemp -d); \
	printf '%s\n' \
	  '{"schema":"sassi-campaign/1","name":"ci-smoke","seed":2025,"jobs":[' \
	  ' {"workload":"parboil/sgemm","variant":"small","kind":"inject","injections":4},' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"run"}]}' \
	  > $$tmp/campaign.json; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 1 \
	  --manifest $$tmp/j1.json > /dev/null; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --manifest $$tmp/j2.json > /dev/null; \
	dune exec bin/sassi_run.exe -- compare $$tmp/j1.json $$tmp/j2.json \
	  || { echo "ci: --jobs 2 campaign diverged from --jobs 1"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "ci: parallel campaign determinism check passed"
	@# Host-trace gate: a traced --jobs 2 campaign must emit Chrome
	@# trace_event JSON that parses (trace-summary exit 0), and its
	@# manifest must diff clean against the untraced run — spans never
	@# perturb results.
	@tmp=$$(mktemp -d); \
	printf '%s\n' \
	  '{"schema":"sassi-campaign/1","name":"ci-trace","seed":2025,"jobs":[' \
	  ' {"workload":"parboil/sgemm","variant":"small","kind":"inject","injections":4},' \
	  ' {"workload":"parboil/spmv","variant":"small","kind":"run"}]}' \
	  > $$tmp/campaign.json; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --manifest $$tmp/plain.json > /dev/null; \
	dune exec bin/sassi_run.exe -- campaign $$tmp/campaign.json --jobs 2 \
	  --host-trace $$tmp/host.json --host-metrics $$tmp/pool.prom \
	  --manifest $$tmp/traced.json > /dev/null; \
	dune exec bin/sassi_run.exe -- trace-summary $$tmp/host.json > /dev/null \
	  || { echo "ci: --host-trace output is not a loadable Chrome trace"; rm -rf $$tmp; exit 1; }; \
	grep -q '^sassi_pool_tasks_total' $$tmp/pool.prom \
	  || { echo "ci: --host-metrics missing pool counters"; rm -rf $$tmp; exit 1; }; \
	dune exec bin/sassi_run.exe -- compare $$tmp/plain.json $$tmp/traced.json \
	  || { echo "ci: traced campaign diverged from untraced"; rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp; \
	echo "ci: host-trace gate passed"

# Sequential-vs-parallel wall clock and bit-identity on two task
# mixes; writes BENCH_parallel.json (see EXPERIMENTS.md).
bench-parallel: build
	dune exec bench/main.exe -- parallel --jobs 4

# Span-tracing overhead: traced vs untraced legs of one task mix
# (<5% budget, bit-identical results); writes BENCH_host_overhead.json.
bench-host-overhead: build
	dune exec bench/main.exe -- host-overhead --jobs 4

profile: build
	dune exec bin/sassi_run.exe -- run $(WORKLOAD) --profile

# Histogram/series summary for one workload, e.g.
# `make telemetry WORKLOAD=parboil/spmv`.
telemetry: build
	dune exec bin/sassi_run.exe -- run $(WORKLOAD) --telemetry

clean:
	dune clean
